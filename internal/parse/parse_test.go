package parse

import (
	"strings"
	"testing"

	"blog/internal/term"
)

// fig1 is the program of figure 1 of the paper, verbatim.
const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).

f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).

m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).

?- gf(sam,G).
`

func TestParseFig1(t *testing.T) {
	prog, err := Source(fig1)
	if err != nil {
		t.Fatalf("parse fig1: %v", err)
	}
	if len(prog.Clauses) != 12 {
		t.Fatalf("got %d clauses, want 12", len(prog.Clauses))
	}
	if len(prog.Queries) != 1 {
		t.Fatalf("got %d queries, want 1", len(prog.Queries))
	}
	r0 := prog.Clauses[0]
	if got := r0.Head.String(); got != "gf(X,Z)" {
		t.Errorf("rule 0 head = %s", got)
	}
	if len(r0.Body) != 2 || r0.Body[0].String() != "f(X,Y)" || r0.Body[1].String() != "f(Y,Z)" {
		t.Errorf("rule 0 body = %v", r0.Body)
	}
	if got := prog.Queries[0][0].String(); got != "gf(sam,G)" {
		t.Errorf("query = %s", got)
	}
	// Facts have empty bodies.
	for _, c := range prog.Clauses[2:] {
		if len(c.Body) != 0 {
			t.Errorf("fact %s has body %v", c.Head, c.Body)
		}
	}
}

func TestVariableScopePerClause(t *testing.T) {
	prog, err := Source("p(X,X).\nq(X).")
	if err != nil {
		t.Fatal(err)
	}
	p0 := prog.Clauses[0].Head.(*term.Compound)
	if p0.Args[0] != p0.Args[1] {
		t.Error("X within one clause must be the same variable")
	}
	q0 := prog.Clauses[1].Head.(*term.Compound)
	if q0.Args[0] == p0.Args[0] {
		t.Error("X in different clauses must be distinct variables")
	}
}

func TestVariableSharedHeadBody(t *testing.T) {
	prog, err := Source("p(X) :- q(X).")
	if err != nil {
		t.Fatal(err)
	}
	h := prog.Clauses[0].Head.(*term.Compound)
	b := prog.Clauses[0].Body[0].(*term.Compound)
	if h.Args[0] != b.Args[0] {
		t.Error("X must be shared between head and body")
	}
}

func TestAnonymousVarsDistinct(t *testing.T) {
	prog, err := Source("p(_,_).")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Clauses[0].Head.(*term.Compound)
	if c.Args[0] == c.Args[1] {
		t.Error("each _ must be a fresh variable")
	}
}

func TestParseIntegersAndNegatives(t *testing.T) {
	g, err := Query("p(42, -7)")
	if err != nil {
		t.Fatal(err)
	}
	c := g[0].(*term.Compound)
	if c.Args[0] != term.Int(42) || c.Args[1] != term.Int(-7) {
		t.Errorf("args = %v", c.Args)
	}
}

func TestParseLists(t *testing.T) {
	cases := []struct{ in, want string }{
		{"p([])", "p([])"},
		{"p([a,b,c])", "p([a,b,c])"},
		{"p([H|T])", "p([H|T])"},
		{"p([a,b|T])", "p([a,b|T])"},
		{"p([[a],[b,c]])", "p([[a],[b,c]])"},
	}
	for _, c := range cases {
		g, err := Query(c.in)
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got := g[0].String(); got != c.want {
			t.Errorf("%s parsed as %s", c.in, got)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	g, err := Query("X is 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	// * binds tighter than +.
	want := "is(X,+(1,*(2,3)))"
	if got := g[0].String(); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
	g2, err := Query("X is (1 + 2) * 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := g2[0].String(); got != "is(X,*(+(1,2),3))" {
		t.Errorf("parenthesized: got %s", got)
	}
}

func TestParseComparisons(t *testing.T) {
	for _, op := range []string{"=", "\\=", "<", ">", "=<", ">=", "=:=", "=\\="} {
		g, err := Query("X " + op + " Y")
		if err != nil {
			t.Errorf("op %s: %v", op, err)
			continue
		}
		name, arity, _ := term.Functor(g[0])
		if name != op || arity != 2 {
			t.Errorf("op %s parsed as %s/%d", op, name, arity)
		}
	}
}

func TestParseQueryMultiGoal(t *testing.T) {
	g, err := Query("?- f(sam,Y), f(Y,G).")
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("got %d goals", len(g))
	}
	// Y must be shared between the goals.
	y1 := g[0].(*term.Compound).Args[1]
	y2 := g[1].(*term.Compound).Args[0]
	if y1 != y2 {
		t.Error("Y must be shared across query goals")
	}
}

func TestParseComments(t *testing.T) {
	src := `
% line comment
p(a). /* block
comment */ p(b). % trailing
`
	prog, err := Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Clauses) != 2 {
		t.Errorf("got %d clauses", len(prog.Clauses))
	}
}

func TestParseQuotedAtoms(t *testing.T) {
	g, err := Query("p('hello world', 'it''s', 'a\\nb')")
	if err != nil {
		t.Fatal(err)
	}
	c := g[0].(*term.Compound)
	if c.Args[0] != term.NewAtom("hello world") {
		t.Errorf("arg0 = %v", c.Args[0])
	}
	if c.Args[1] != term.NewAtom("it's") {
		t.Errorf("arg1 = %v", c.Args[1])
	}
	if c.Args[2] != term.NewAtom("a\nb") {
		t.Errorf("arg2 = %v", c.Args[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"p(a",     // unclosed paren
		"p(a)",    // missing period (Source requires it)
		"p(a)) .", // stray paren
		"'unterminated",
		"/* unclosed",
		"p(a,).",  // missing arg
		"3 :- p.", // non-callable head
		"X :- p.", // variable head
	}
	for _, src := range cases {
		if _, err := Source(src); err == nil {
			t.Errorf("Source(%q) should fail", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Source("p(a).\nq(b")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(err.Error(), "parse error") {
		t.Errorf("error text %q", err)
	}
}

func TestOneTerm(t *testing.T) {
	tm, err := OneTerm("f(X, g(Y))")
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.String(); got != "f(X,g(Y))" {
		t.Errorf("got %s", got)
	}
	if _, err := OneTerm("f(X) extra"); err == nil {
		t.Error("trailing tokens should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	// Terms print back to a form that reparses to an equal-shape term.
	inputs := []string{
		"f(a,b)", "f(X,g(X))", "[a,b,c]", "[H|T]", "p(1, -2, 'q r')",
		"is(X,+(1,2))",
	}
	for _, in := range inputs {
		t1, err := OneTerm(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		t2, err := OneTerm(t1.String())
		if err != nil {
			t.Fatalf("reparse %s: %v", t1, err)
		}
		if t1.String() != t2.String() {
			t.Errorf("round trip %s -> %s -> %s", in, t1, t2)
		}
	}
}

func TestSection5Example(t *testing.T) {
	// The A :- B,C,D example from section 5 of the paper.
	src := `
a :- b, c, d.
b :- e.
b :- f.
c :- g.
d :- h.
e. f. g. h.
`
	prog, err := Source(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Clauses) != 9 {
		t.Errorf("got %d clauses, want 9", len(prog.Clauses))
	}
	if len(prog.Clauses[0].Body) != 3 {
		t.Errorf("a/0 body len = %d", len(prog.Clauses[0].Body))
	}
}

func TestTableDirective(t *testing.T) {
	prog, err := Source(`
:- table path/2.
:- table even/1, odd/1.
path(X, Y) :- edge(X, Y).
edge(a, b).
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TabledDecl{{Name: "path", Arity: 2, Line: 2}, {Name: "even", Arity: 1, Line: 3}, {Name: "odd", Arity: 1, Line: 3}}
	if len(prog.Tabled) != len(want) {
		t.Fatalf("got %d tabled decls, want %d: %v", len(prog.Tabled), len(want), prog.Tabled)
	}
	for i, d := range prog.Tabled {
		if d != want[i] {
			t.Errorf("decl %d = %+v, want %+v", i, d, want[i])
		}
	}
	if len(prog.Clauses) != 2 {
		t.Errorf("got %d clauses, want 2", len(prog.Clauses))
	}
}

func TestTableDirectiveMin(t *testing.T) {
	prog, err := Source(`
:- table shortest/3 min(3).
:- table path/2, best/4 min(2).
shortest(X, Y, C) :- edge(X, Y, C).
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TabledDecl{
		{Name: "shortest", Arity: 3, Min: 3, Line: 2},
		{Name: "path", Arity: 2, Line: 3},
		{Name: "best", Arity: 4, Min: 2, Line: 3},
	}
	if len(prog.Tabled) != len(want) {
		t.Fatalf("got %d tabled decls, want %d: %v", len(prog.Tabled), len(want), prog.Tabled)
	}
	for i, d := range prog.Tabled {
		if d != want[i] {
			t.Errorf("decl %d = %+v, want %+v", i, d, want[i])
		}
	}
}

func TestTableDirectiveErrors(t *testing.T) {
	for _, src := range []string{
		":- tabulate path/2.",         // unknown directive
		":- table path.",              // missing arity
		":- table path/X.",            // non-integer arity
		":- table /2.",                // missing name
		":- table path/2",             // missing terminator
		":- table path/2 min.",        // min without position
		":- table path/2 min().",      // empty min
		":- table path/2 min(X).",     // non-integer position
		":- table path/2 min(0).",     // zero position
		":- table shortest/3 min(3)",  // missing terminator after mode
		":- table shortest/3 max(3).", // unknown mode
		":- table shortest/3 min(3",   // unclosed mode
	} {
		if _, err := Source(src); err == nil {
			t.Errorf("Source(%q) parsed, want error", src)
		}
	}
}

func BenchmarkParseFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Source(fig1); err != nil {
			b.Fatal(err)
		}
	}
}
