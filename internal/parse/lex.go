// Package parse implements a lexer and parser for the Prolog subset used by
// the B-LOG paper: facts, Horn rules, and queries over atoms, integers,
// variables, compound terms and lists, with `%` line comments and `/* */`
// block comments. The paper's figure 1 program parses verbatim.
package parse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF   tokenKind = iota
	tokAtom            // lowercase identifier, quoted atom, or symbolic atom
	tokVar             // uppercase/underscore identifier
	tokInt             // integer literal
	tokPunct           // ( ) [ ] , | .
	tokNeck            // :-
	tokQuery           // ?-
)

type token struct {
	kind tokenKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer turns source text into tokens. It is deliberately simple: the
// grammar in the paper needs no operator-precedence machinery beyond
// recognizing `:-`, `?-` and the comma.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				_ = c
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
}

const symbolChars = "+-*/\\^<>=~:.?@#&"

func isSymbolChar(c byte) bool { return strings.IndexByte(symbolChars, c) >= 0 }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch {
	case c >= '0' && c <= '9':
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		var v int64
		for i := 0; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		return token{kind: tokInt, text: text, val: v, line: line, col: col}, nil

	case c >= 'a' && c <= 'z':
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isAlnum(c) {
				break
			}
			l.advance()
		}
		return token{kind: tokAtom, text: l.src[start:l.pos], line: line, col: col}, nil

	case c >= 'A' && c <= 'Z' || c == '_':
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isAlnum(c) {
				break
			}
			l.advance()
		}
		return token{kind: tokVar, text: l.src[start:l.pos], line: line, col: col}, nil

	case c == '\'':
		l.advance()
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return token{}, l.errorf(line, col, "unterminated quoted atom")
			}
			l.advance()
			if c == '\\' {
				e, ok := l.peekByte()
				if !ok {
					return token{}, l.errorf(line, col, "unterminated escape in quoted atom")
				}
				l.advance()
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\', '\'':
					b.WriteByte(e)
				default:
					return token{}, l.errorf(line, col, "unknown escape \\%c in quoted atom", e)
				}
				continue
			}
			if c == '\'' {
				// Doubled quote is an escaped quote.
				if nc, ok := l.peekByte(); ok && nc == '\'' {
					l.advance()
					b.WriteByte('\'')
					continue
				}
				return token{kind: tokAtom, text: b.String(), line: line, col: col}, nil
			}
			b.WriteByte(c)
		}

	case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|' || c == '!':
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil

	case isSymbolChar(c):
		start := l.pos
		for {
			c, ok := l.peekByte()
			if !ok || !isSymbolChar(c) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		switch text {
		case ":-":
			return token{kind: tokNeck, text: text, line: line, col: col}, nil
		case "?-":
			return token{kind: tokQuery, text: text, line: line, col: col}, nil
		case ".":
			return token{kind: tokPunct, text: text, line: line, col: col}, nil
		case "-":
			// Negative integer literal: `-` immediately followed by digits.
			if d, ok := l.peekByte(); ok && d >= '0' && d <= '9' {
				numTok, err := l.next()
				if err != nil {
					return token{}, err
				}
				numTok.val = -numTok.val
				numTok.text = "-" + numTok.text
				numTok.line, numTok.col = line, col
				return numTok, nil
			}
			return token{kind: tokAtom, text: text, line: line, col: col}, nil
		default:
			return token{kind: tokAtom, text: text, line: line, col: col}, nil
		}

	default:
		r := rune(c)
		if unicode.IsPrint(r) {
			return token{}, l.errorf(line, col, "unexpected character %q", r)
		}
		return token{}, l.errorf(line, col, "unexpected byte 0x%02x", c)
	}
}
