package parse

import (
	"blog/internal/term"
)

// Clause is a parsed Horn clause. Facts have an empty Body. Queries are
// represented by ParsedQuery instead.
type Clause struct {
	Head term.Term
	Body []term.Term
	Line int
}

// TabledDecl is one predicate named by a `:- table name/arity` directive.
// Min, when nonzero, is the 1-based argument position declared as the cost
// slot by the `min(N)` answer-subsumption form: the table keeps only the
// least-cost answer per binding of the remaining arguments.
type TabledDecl struct {
	Name  string
	Arity int
	Min   int
	Line  int
}

// Program is the result of parsing a source text: its clauses in order,
// any directive queries (`?- goal, ... .`) embedded in the text, and the
// predicates declared tabled (`:- table name/arity, ... .`).
type Program struct {
	Clauses []Clause
	Queries [][]term.Term
	Tabled  []TabledDecl
}

// parser is a single-token-lookahead recursive descent parser.
type parser struct {
	lx   *lexer
	tok  token
	vars map[string]*term.Var // variable scope of the current clause
}

// Source parses a complete program text.
func Source(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		p.vars = make(map[string]*term.Var)
		if p.tok.kind == tokQuery {
			if err := p.advance(); err != nil {
				return nil, err
			}
			goals, err := p.body()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("."); err != nil {
				return nil, err
			}
			prog.Queries = append(prog.Queries, goals)
			continue
		}
		if p.tok.kind == tokNeck {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.directive(prog); err != nil {
				return nil, err
			}
			continue
		}
		line := p.tok.line
		head, err := p.goal()
		if err != nil {
			return nil, err
		}
		if _, ok := term.Indicator(head); !ok {
			return nil, p.lx.errorf(line, 1, "clause head must be callable, got %s", head)
		}
		var body []term.Term
		if p.tok.kind == tokNeck {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if body, err = p.body(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		prog.Clauses = append(prog.Clauses, Clause{Head: head, Body: body, Line: line})
	}
	return prog, nil
}

// Query parses a single query: a comma-separated goal list with an optional
// leading `?-` and optional trailing `.`.
func Query(src string) ([]term.Term, error) {
	p := &parser{lx: newLexer(src), vars: make(map[string]*term.Var)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokQuery {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	goals, err := p.body()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPunct && p.tok.text == "." {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.lx.errorf(p.tok.line, p.tok.col, "unexpected %s after query", p.tok)
	}
	return goals, nil
}

// OneTerm parses a single term (no trailing period allowed).
func OneTerm(src string) (term.Term, error) {
	p := &parser{lx: newLexer(src), vars: make(map[string]*term.Var)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.goal()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lx.errorf(p.tok.line, p.tok.col, "unexpected %s after term", p.tok)
	}
	return t, nil
}

// directive parses the body of a leading `:- ...` directive. Only
// `table name/arity[ min(N)], ... .` is recognized; anything else is an
// error so a typo does not silently load as nothing.
func (p *parser) directive(prog *Program) error {
	if p.tok.kind != tokAtom || p.tok.text != "table" {
		return p.lx.errorf(p.tok.line, p.tok.col,
			"unsupported directive %s (only `:- table name/arity.` is recognized)", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	for {
		line := p.tok.line
		if p.tok.kind != tokAtom || p.tok.text == "/" {
			return p.lx.errorf(p.tok.line, p.tok.col, "expected predicate name in table directive, found %s", p.tok)
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokAtom || p.tok.text != "/" {
			return p.lx.errorf(p.tok.line, p.tok.col, "expected / after predicate name %q, found %s", name, p.tok)
		}
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokInt || p.tok.val < 0 {
			return p.lx.errorf(p.tok.line, p.tok.col, "expected non-negative arity after %s/, found %s", name, p.tok)
		}
		arity := int(p.tok.val)
		if err := p.advance(); err != nil {
			return err
		}
		min, err := p.tableMode(name)
		if err != nil {
			return err
		}
		prog.Tabled = append(prog.Tabled, TabledDecl{Name: name, Arity: arity, Min: min, Line: line})
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		return p.expectPunct(".")
	}
}

// tableMode parses the optional answer-subsumption mode after a
// `name/arity` in a table directive. `min(N)` declares argument N (1-based)
// as the cost slot; absence returns 0 (plain variant tabling).
func (p *parser) tableMode(name string) (int, error) {
	if p.tok.kind != tokAtom || p.tok.text != "min" {
		return 0, nil
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	if err := p.expectPunct("("); err != nil {
		return 0, err
	}
	if p.tok.kind != tokInt || p.tok.val < 1 {
		return 0, p.lx.errorf(p.tok.line, p.tok.col, "expected positive argument position in min(...) after %s, found %s", name, p.tok)
	}
	min := int(p.tok.val)
	if err := p.advance(); err != nil {
		return 0, err
	}
	return min, p.expectPunct(")")
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.lx.errorf(p.tok.line, p.tok.col, "expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

// body parses a comma-separated conjunction of goals.
func (p *parser) body() ([]term.Term, error) {
	var goals []term.Term
	for {
		g, err := p.goal()
		if err != nil {
			return nil, err
		}
		goals = append(goals, g)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return goals, nil
	}
}

// Operator precedence, Prolog-style (lower binds tighter).
// goal     := expr500 ( CMPOP expr500 )?      comparison / =,is level (700)
// expr500  := expr400 ( (+|-) expr400 )*      additive
// expr400  := primary ( (*|//|mod) primary )* multiplicative
var comparisonOps = map[string]bool{
	"=": true, "\\=": true, "==": true, "\\==": true, "is": true,
	"=:=": true, "=\\=": true, "<": true, ">": true, "=<": true, ">=": true,
	"@<": true, "@>": true, "@=<": true, "@>=": true, "=..": true,
}

func (p *parser) goal() (term.Term, error) {
	left, err := p.expr500()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokAtom && comparisonOps[p.tok.text] {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.expr500()
		if err != nil {
			return nil, err
		}
		return term.NewCompound(op, left, right), nil
	}
	return left, nil
}

func (p *parser) expr500() (term.Term, error) {
	left, err := p.expr400()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAtom && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.expr400()
		if err != nil {
			return nil, err
		}
		left = term.NewCompound(op, left, right)
	}
	return left, nil
}

func (p *parser) expr400() (term.Term, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAtom && (p.tok.text == "*" || p.tok.text == "//" || p.tok.text == "mod") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		left = term.NewCompound(op, left, right)
	}
	return left, nil
}

func (p *parser) primary() (term.Term, error) {
	switch p.tok.kind {
	case tokInt:
		v := term.Int(p.tok.val)
		return v, p.advance()

	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if name == "_" {
			return term.NewVar("_"), nil // each _ is a distinct variable
		}
		if v, ok := p.vars[name]; ok {
			return v, nil
		}
		v := term.NewVar(name)
		p.vars[name] = v
		return v, nil

	case tokAtom:
		name := p.tok.text
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Functor application only when `(` immediately follows; we do not
		// track adjacency, which is fine for this grammar.
		if p.tok.kind == tokPunct && p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []term.Term
			for {
				a, err := p.goal()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind == tokPunct && p.tok.text == "," {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if len(args) == 0 {
				return nil, p.lx.errorf(line, col, "empty argument list for %s", name)
			}
			return term.NewCompound(name, args...), nil
		}
		return term.NewAtom(name), nil

	case tokPunct:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.goal()
			if err != nil {
				return nil, err
			}
			return t, p.expectPunct(")")
		case "[":
			return p.list()
		case "!":
			return term.NewAtom("!"), p.advance()
		}
	}
	return nil, p.lx.errorf(p.tok.line, p.tok.col, "unexpected %s", p.tok)
}

func (p *parser) list() (term.Term, error) {
	if err := p.advance(); err != nil { // consume [
		return nil, err
	}
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		return term.EmptyList, p.advance()
	}
	var items []term.Term
	for {
		it, err := p.goal()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	tail := term.Term(term.EmptyList)
	if p.tok.kind == tokPunct && p.tok.text == "|" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.goal()
		if err != nil {
			return nil, err
		}
		tail = t
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	l := tail
	for i := len(items) - 1; i >= 0; i-- {
		l = term.Cons(items[i], l)
	}
	return l, nil
}
