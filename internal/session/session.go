// Package session implements the B-LOG session concept of section 5.
//
// A session is "a succession of queries during which no permanent updating
// of weights is done in the global database". While the session runs, the
// strong section-5 update rules apply to a local overlay store kept in
// primary memory; the global table is read through but never written. When
// the user declares the session over, the global database is updated
// conservatively:
//
//   - no infinity overrides a previously non-infinite global weight,
//   - other weights move a fraction Alpha towards the session's value,
//     averaging modifications over sessions so the global table converges
//     toward the theoretical model.
package session

import (
	"sync"

	"blog/internal/kb"
	"blog/internal/weights"
)

// Session is a local weight overlay on top of a global table. It
// implements weights.Store, so search engines use it exactly like a plain
// table. A Session is safe for concurrent use by parallel workers.
type Session struct {
	global *weights.Table
	// Alpha is the global-update damping factor in (0,1]: 1 adopts the
	// session value outright, smaller values average across sessions.
	alpha float64

	mu    sync.RWMutex
	local map[kb.Arc]weights.Learned
	ended bool

	// query counters for the learning-curve experiment
	queries   int
	successes int
	failures  int
}

// Option configures a Session.
type Option func(*Session)

// WithAlpha sets the end-of-session averaging factor (default 0.5).
func WithAlpha(a float64) Option {
	return func(s *Session) {
		if a > 0 && a <= 1 {
			s.alpha = a
		}
	}
}

// New begins a session over the given global table.
func New(global *weights.Table, opts ...Option) *Session {
	s := &Session{
		global: global,
		alpha:  0.5,
		local:  make(map[kb.Arc]weights.Learned),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Config implements weights.Store.
func (s *Session) Config() weights.Config { return s.global.Config() }

// Weight implements weights.Store: local knowledge shadows global.
func (s *Session) Weight(a kb.Arc) float64 {
	s.mu.RLock()
	e, ok := s.local[a]
	s.mu.RUnlock()
	if !ok {
		return s.global.Weight(a)
	}
	if e.Kind == weights.Infinite {
		return s.Config().InfiniteWeight()
	}
	return e.W
}

// State implements weights.Store.
func (s *Session) State(a kb.Arc) (weights.Kind, float64) {
	s.mu.RLock()
	e, ok := s.local[a]
	s.mu.RUnlock()
	if !ok {
		return s.global.State(a)
	}
	return e.Kind, e.W
}

// RecordSuccess implements weights.Store with the section-5 success rule,
// writing only the local overlay.
func (s *Session) RecordSuccess(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	cfg := s.Config()
	s.mu.Lock()
	defer s.mu.Unlock()
	var m float64
	var open []kb.Arc
	seen := make(map[kb.Arc]bool, len(chain))
	for _, a := range chain {
		kind, w := s.stateLocked(a)
		if kind == weights.Known {
			m += w
			continue
		}
		if seen[a] {
			continue
		}
		seen[a] = true
		open = append(open, a)
	}
	if len(open) == 0 {
		return
	}
	w := 0.0
	if m < cfg.N {
		w = (cfg.N - m) / float64(len(open))
	}
	for _, a := range open {
		s.local[a] = weights.Learned{W: w, Kind: weights.Known}
	}
}

// RecordFailure implements weights.Store with the section-5 failure rule,
// writing only the local overlay.
func (s *Session) RecordFailure(chain []kb.Arc) {
	if len(chain) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range chain {
		if kind, _ := s.stateLocked(a); kind == weights.Infinite {
			return
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		a := chain[i]
		if kind, _ := s.stateLocked(a); kind == weights.Unknown {
			s.local[a] = weights.Learned{W: s.Config().InfiniteWeight(), Kind: weights.Infinite}
			return
		}
	}
}

// stateLocked reads through local to global; caller holds s.mu.
func (s *Session) stateLocked(a kb.Arc) (weights.Kind, float64) {
	if e, ok := s.local[a]; ok {
		return e.Kind, e.W
	}
	return s.global.State(a)
}

// NoteQuery records query outcome counts for reporting.
func (s *Session) NoteQuery(succeeded bool) {
	s.mu.Lock()
	s.queries++
	if succeeded {
		s.successes++
	} else {
		s.failures++
	}
	s.mu.Unlock()
}

// Counts returns (queries, successes, failures) recorded with NoteQuery.
func (s *Session) Counts() (queries, successes, failures int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queries, s.successes, s.failures
}

// LocalLen returns the number of locally learned arcs.
func (s *Session) LocalLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.local)
}

// MergeStats reports what End did to the global table.
type MergeStats struct {
	Adopted          int // unknown globals that took the session value
	Averaged         int // known globals moved toward the session value
	InfinitiesKept   int // session infinities written (global was unknown)
	InfinitiesVetoed int // session infinities dropped (global was known)
}

// End closes the session and conservatively merges the local overlay into
// the global table. After End the session may still be read but no longer
// records updates. End is idempotent; the second and later calls are no-ops.
func (s *Session) End() MergeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st MergeStats
	if s.ended {
		return st
	}
	s.ended = true
	for a, e := range s.local {
		gk, gw := s.global.State(a)
		switch e.Kind {
		case weights.Infinite:
			// "No infinities will override previous non-infinite weights."
			switch gk {
			case weights.Known:
				st.InfinitiesVetoed++
			case weights.Infinite:
				// already infinite globally; nothing to do
			default:
				s.global.SetInfinite(a)
				st.InfinitiesKept++
			}
		case weights.Known:
			switch gk {
			case weights.Known:
				// Move a fraction alpha toward the session value.
				s.global.Set(a, gw+s.alpha*(e.W-gw))
				st.Averaged++
			default:
				// Unknown or previously infinite global: adopt. A session
				// that proved a chain succeeds overrides a stale infinity
				// (the success rule already reset it locally).
				s.global.Set(a, e.W)
				st.Adopted++
			}
		}
	}
	return st
}

// Ended reports whether End has been called.
func (s *Session) Ended() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ended
}

var _ weights.Store = (*Session)(nil)
