package session

import (
	"sync"
	"testing"

	"blog/internal/kb"
	"blog/internal/weights"
)

func arc(caller, pos, callee int) kb.Arc {
	return kb.Arc{Caller: kb.ClauseID(caller), Pos: pos, Callee: kb.ClauseID(callee)}
}

func newPair() (*weights.Table, *Session) {
	g := weights.NewTable(weights.Config{N: 16, A: 64})
	return g, New(g)
}

func TestReadsThroughToGlobal(t *testing.T) {
	g, s := newPair()
	a := arc(0, 0, 1)
	g.Set(a, 5)
	if w := s.Weight(a); w != 5 {
		t.Errorf("session should read global weight, got %v", w)
	}
	k, w := s.State(a)
	if k != weights.Known || w != 5 {
		t.Errorf("state = %v %v", k, w)
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	g, s := newPair()
	a := arc(0, 0, 1)
	g.Set(a, 5)
	s.RecordFailure([]kb.Arc{arc(9, 0, 9), a}) // a known; the other arc gets inf
	// Make a itself locally known via a success on a fresh chain.
	b := arc(1, 0, 2)
	s.RecordSuccess([]kb.Arc{b})
	if w := s.Weight(b); w != 16 {
		t.Errorf("local success weight = %v, want N = 16", w)
	}
	// Global is untouched during the session.
	if gk, _ := g.State(b); gk != weights.Unknown {
		t.Error("global table must not change before End")
	}
}

func TestSessionFailureRuleNearestLeaf(t *testing.T) {
	_, s := newPair()
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3)}
	s.RecordFailure(chain)
	if k, _ := s.State(chain[2]); k != weights.Infinite {
		t.Error("leaf-most arc should be locally infinite")
	}
	if k, _ := s.State(chain[0]); k != weights.Unknown {
		t.Error("root-most arc should stay unknown")
	}
	// Second failure on same chain is already explained.
	s.RecordFailure(chain)
	if k, _ := s.State(chain[1]); k != weights.Unknown {
		t.Error("already-explained failure must not add infinities")
	}
}

func TestSessionSuccessRuleUsesGlobalKnowns(t *testing.T) {
	g, s := newPair()
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2), arc(2, 0, 3)}
	g.Set(chain[0], 4) // globally known M=4; two unknowns get 6 each
	s.RecordSuccess(chain)
	if _, w := s.State(chain[1]); w != 6 {
		t.Errorf("share = %v, want (16-4)/2 = 6", w)
	}
	if w := weights.ChainBound(s, chain); w != 16 {
		t.Errorf("chain bound = %v, want N", w)
	}
}

func TestEndAdoptsIntoUnknownGlobal(t *testing.T) {
	g, s := newPair()
	a := arc(0, 0, 1)
	s.RecordSuccess([]kb.Arc{a})
	st := s.End()
	if st.Adopted != 1 {
		t.Errorf("adopted = %d, want 1", st.Adopted)
	}
	if k, w := g.State(a); k != weights.Known || w != 16 {
		t.Errorf("global after End = %v %v", k, w)
	}
}

func TestEndAveragesKnownGlobal(t *testing.T) {
	g := weights.NewTable(weights.Config{N: 16, A: 64})
	s := New(g, WithAlpha(0.5))
	a := arc(0, 0, 1)
	g.Set(a, 8)
	// Locally the success rule treats a as known(8): use a forced local
	// value instead by failing a different arc then succeeding on a fresh
	// chain that includes a... simpler: session success on chain {a, b}
	// treats a as known, so to get a local value for a we need it unknown
	// globally. Test averaging via two sessions instead.
	b := arc(1, 0, 2)
	s.RecordSuccess([]kb.Arc{b}) // local b = 16
	s.End()
	if _, w := g.State(b); w != 16 {
		t.Fatalf("b adopted = %v", w)
	}
	// Second session learns a different value for b's chain: b known(16)
	// + c unknown. c gets 0 because M = 16 >= N.
	s2 := New(g, WithAlpha(0.5))
	c := arc(2, 0, 3)
	s2.RecordSuccess([]kb.Arc{b, c})
	s2.End()
	if _, w := g.State(c); w != 0 {
		t.Errorf("c = %v, want 0", w)
	}
	_ = a
}

func TestEndAveragingMovesHalfway(t *testing.T) {
	g := weights.NewTable(weights.Config{N: 16, A: 64})
	a := arc(0, 0, 1)
	g.Set(a, 4)
	s := New(g, WithAlpha(0.5))
	// Force a local known value directly through the success rule: chain
	// of only globally-unknown arcs; then override global to create a
	// disagreement before End.
	s.RecordSuccess([]kb.Arc{arc(5, 0, 6)})
	// Manually ensure a has a local value: a is globally known, so the
	// success rule won't touch it. Instead verify averaged stats on the
	// (5,0,6) arc by pre-seeding global AFTER local learning.
	g.Set(arc(5, 0, 6), 0)
	st := s.End()
	if st.Averaged != 1 {
		t.Fatalf("averaged = %d, want 1", st.Averaged)
	}
	if _, w := g.State(arc(5, 0, 6)); w != 8 {
		t.Errorf("global moved to %v, want halfway 8 (0 -> 16, alpha .5)", w)
	}
	_ = a
}

func TestEndInfinityNeverOverridesKnown(t *testing.T) {
	g, s := newPair()
	a := arc(0, 0, 1)
	g.Set(a, 3) // globally known non-infinite
	// Make the session believe a is infinite: global known blocks the
	// failure rule, so seed the local entry via a chain where a is the
	// only unknown... it is known, so RecordFailure would skip it. Force
	// the semantics with an unknown arc and then check the veto path on
	// an arc that is locally infinite and globally known.
	b := arc(1, 0, 2)
	s.RecordFailure([]kb.Arc{b}) // local infinite
	g.Set(b, 7)                  // meanwhile another session published a known weight
	st := s.End()
	if st.InfinitiesVetoed != 1 {
		t.Errorf("vetoed = %d, want 1", st.InfinitiesVetoed)
	}
	if k, w := g.State(b); k != weights.Known || w != 7 {
		t.Errorf("global b = %v %v; infinity must not override", k, w)
	}
	_ = a
}

func TestEndInfinityKeptWhenGlobalUnknown(t *testing.T) {
	g, s := newPair()
	b := arc(1, 0, 2)
	s.RecordFailure([]kb.Arc{b})
	st := s.End()
	if st.InfinitiesKept != 1 {
		t.Errorf("kept = %d, want 1", st.InfinitiesKept)
	}
	if k, _ := g.State(b); k != weights.Infinite {
		t.Error("global should learn the infinity")
	}
}

func TestEndIdempotent(t *testing.T) {
	_, s := newPair()
	s.RecordSuccess([]kb.Arc{arc(0, 0, 1)})
	first := s.End()
	if first.Adopted != 1 {
		t.Fatalf("first End adopted %d", first.Adopted)
	}
	second := s.End()
	if second != (MergeStats{}) {
		t.Errorf("second End should be a no-op, got %+v", second)
	}
	if !s.Ended() {
		t.Error("Ended should report true")
	}
}

func TestSuccessOverridesLocalInfinity(t *testing.T) {
	// A chain first believed failed, then proven successful within the
	// same session: the success rule resets the local infinity.
	_, s := newPair()
	a := arc(0, 0, 1)
	s.RecordFailure([]kb.Arc{a})
	if k, _ := s.State(a); k != weights.Infinite {
		t.Fatal("setup: a should be locally infinite")
	}
	s.RecordSuccess([]kb.Arc{a})
	k, w := s.State(a)
	if k != weights.Known || w != 16 {
		t.Errorf("after success a = %v %v, want known 16", k, w)
	}
}

func TestNoteQueryCounts(t *testing.T) {
	_, s := newPair()
	s.NoteQuery(true)
	s.NoteQuery(true)
	s.NoteQuery(false)
	q, ok, fail := s.Counts()
	if q != 3 || ok != 2 || fail != 1 {
		t.Errorf("counts = %d %d %d", q, ok, fail)
	}
}

func TestWithAlphaValidation(t *testing.T) {
	g := weights.NewTable(weights.DefaultConfig())
	s := New(g, WithAlpha(-1), WithAlpha(2)) // both invalid, default kept
	if s.alpha != 0.5 {
		t.Errorf("alpha = %v, want default 0.5", s.alpha)
	}
}

func TestConcurrentSessionUse(t *testing.T) {
	_, s := newPair()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				a := arc(g, 0, i%11)
				switch i % 3 {
				case 0:
					s.RecordSuccess([]kb.Arc{a, arc(g, 1, i%7)})
				case 1:
					s.RecordFailure([]kb.Arc{a})
				default:
					s.Weight(a)
				}
			}
		}(g)
	}
	wg.Wait()
	s.End()
}

func TestSessionsConvergeAcrossRestarts(t *testing.T) {
	// Repeatedly learn the same chain across sessions: the global value
	// stabilizes at the session value (alpha-averaging is a fixpoint).
	g := weights.NewTable(weights.Config{N: 16, A: 64})
	chain := []kb.Arc{arc(0, 0, 1), arc(1, 0, 2)}
	for i := 0; i < 6; i++ {
		s := New(g, WithAlpha(0.5))
		s.RecordSuccess(chain)
		s.End()
	}
	b := weights.ChainBound(g, chain)
	if b < 15.9 || b > 16.1 {
		t.Errorf("global chain bound after repeated sessions = %v, want ~16", b)
	}
}

func BenchmarkSessionWeightRead(b *testing.B) {
	g, s := newPair()
	a := arc(0, 0, 1)
	g.Set(a, 5)
	s.RecordSuccess([]kb.Arc{arc(1, 0, 2)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Weight(a)
	}
}
