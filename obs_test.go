package blog

import (
	"strings"
	"sync"
	"testing"

	"blog/internal/workload"
)

// findSpan walks the span tree depth-first for the first span whose name
// has the given prefix.
func findSpan(s *Span, prefix string) *Span {
	if s == nil {
		return nil
	}
	if strings.HasPrefix(s.Name, prefix) {
		return s
	}
	for _, c := range s.Children {
		if hit := findSpan(c, prefix); hit != nil {
			return hit
		}
	}
	return nil
}

// TestProfilerSpanAccounting is the acceptance check for the profiler's
// interval attribution: on a search heavy enough to dwarf timer
// granularity, the per-predicate nanosecond sum must land within 20% of
// the search span's wall time, because the meter charges every interval
// between dispatches to some predicate — time can neither vanish nor be
// double-counted.
func TestProfilerSpanAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a multi-millisecond search")
	}
	p, err := LoadString(workload.DeepFailure(800, 56))
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfiler()
	res, err := p.Query("top(X)", DFS, Traced(), Profiled(prof), MaxDepth(128))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %d, want 1", len(res.Solutions))
	}
	if res.Representation != "trail-store" {
		t.Fatalf("representation = %q, want trail-store (profiled hot path)", res.Representation)
	}
	if res.Spans == nil || res.Spans.Name != "query" {
		t.Fatalf("Spans = %+v, want root span named query", res.Spans)
	}
	for _, phase := range []string{"parse", "compile", "search"} {
		if findSpan(res.Spans, phase) == nil {
			t.Errorf("span tree missing %q phase:\n%s", phase, res.Spans.Render())
		}
	}
	search := findSpan(res.Spans, "search")
	if search == nil {
		t.Fatal("no search span")
	}
	if got := search.Counts["expanded"]; uint64(got) != res.Expanded {
		t.Errorf("search span expanded = %d, result says %d", got, res.Expanded)
	}
	wallNanos := search.DurUs * 1e3
	if wallNanos < 2e6 {
		t.Fatalf("search took %.0fns; workload too small for a meaningful accounting check", wallNanos)
	}
	sum := float64(prof.TotalNanos())
	if ratio := sum / wallNanos; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("profiler accounts for %.0fns of a %.0fns search (ratio %.3f), want within 20%%",
			sum, wallNanos, ratio)
	}
	if top := prof.Top(3); len(top) == 0 || top[0].Expansions == 0 {
		t.Errorf("Top(3) = %+v, want hot predicates with expansion counts", top)
	}
}

// TestTracedTabledFixpoint checks that tabled resolution nests its
// fixpoint spans (with per-round children and answer deltas) under the
// query's search phase.
func TestTracedTabledFixpoint(t *testing.T) {
	p, err := LoadString(workload.Cyclic(12, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Query("path(v0, X)", DFS, Tabled(), Traced())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 12 {
		t.Fatalf("solutions = %d, want 12 (every node reachable on the ring)", len(res.Solutions))
	}
	search := findSpan(res.Spans, "search")
	if search == nil {
		t.Fatalf("no search span:\n%s", res.Spans.Render())
	}
	fix := findSpan(search, "fixpoint path/2")
	if fix == nil {
		t.Fatalf("no fixpoint span under search:\n%s", res.Spans.Render())
	}
	if fix.Counts["rounds"] < 1 {
		t.Errorf("fixpoint rounds = %d, want >= 1", fix.Counts["rounds"])
	}
	round := findSpan(fix, "round 1")
	if round == nil {
		t.Fatalf("fixpoint has no round children:\n%s", fix.Render())
	}
	if round.Counts["answers"] == 0 {
		t.Errorf("round 1 derived no answers:\n%s", fix.Render())
	}
}

// TestTracedStreamSpans checks the streaming path: an Iter pulled to
// exhaustion yields a finished span tree with the search phase closed.
func TestTracedStreamSpans(t *testing.T) {
	p, err := LoadString(workload.FamilyTree(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	it, err := p.Iter("anc(p0, X)", DFS, Traced())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("stream yielded no solutions")
	}
	spans := it.Spans()
	if spans == nil || spans.Name != "query" {
		t.Fatalf("Spans = %+v, want root span named query", spans)
	}
	search := findSpan(spans, "search")
	if search == nil {
		t.Fatalf("no search span:\n%s", spans.Render())
	}
	if search.DurUs <= 0 {
		t.Errorf("search span not closed at stream end: dur %.1fµs", search.DurUs)
	}
}

// TestSharedProfilerConcurrentQueries hammers one profiler from
// concurrent queries across both binding representations, tabled
// resolution and the OR-parallel strategy — the satellite's -race check
// that the dense-cell array's copy-on-write growth and atomic counters
// hold up under contention.
func TestSharedProfilerConcurrentQueries(t *testing.T) {
	deep, err := LoadString(workload.DeepFailure(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err := LoadString(workload.Cyclic(8, 2, 7))
	if err != nil {
		t.Fatal(err)
	}
	shared := NewProfiler()
	runs := []struct {
		name  string
		prog  *Program
		goal  string
		strat Strategy
		opts  []Option
	}{
		{"trail-dfs", deep, "top(X)", DFS, []Option{Traced()}},
		{"env-dfs", deep, "top(X)", DFS, []Option{TrailStore(false)}},
		{"bfs", deep, "top(X)", BFS, nil},
		{"tabled", cyclic, "path(v0, X)", DFS, []Option{Tabled(), Traced()}},
		{"parallel", deep, "top(X)", Parallel, []Option{Workers(4)}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(runs)*4)
	for _, r := range runs {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(r struct {
				name  string
				prog  *Program
				goal  string
				strat Strategy
				opts  []Option
			}) {
				defer wg.Done()
				opts := append([]Option{Profiled(shared), MaxDepth(64)}, r.opts...)
				if _, err := r.prog.Query(r.goal, r.strat, opts...); err != nil {
					errs <- err
				}
			}(r)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := shared.Snapshot()
	if len(snap) == 0 {
		t.Fatal("shared profiler saw nothing")
	}
	if shared.TotalNanos() == 0 {
		t.Error("shared profiler attributed no time")
	}
}
