package blog

// Tests for the unified solver runtime's concurrency contract: one Program
// serving many simultaneous queries (run with -race), and context
// cancellation that returns promptly without leaking goroutines.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"blog/internal/workload"
)

// TestConcurrentQueriesAllStrategies hammers one Program from every
// strategy at once, with global learning and a learning session active.
// The -race run of the suite is the assertion that the facade, the weight
// table, the session overlay, and all three engines share state safely.
func TestConcurrentQueriesAllStrategies(t *testing.T) {
	p, err := LoadString(fig1 + "\ncolor(red). color(blue).\n")
	if err != nil {
		t.Fatal(err)
	}
	sess := p.NewSession(0.5)

	type job struct {
		name string
		run  func() (*Result, error)
	}
	jobs := []job{
		{"dfs", func() (*Result, error) {
			return p.Query("gf(sam,G)", DFS, Learn())
		}},
		{"best", func() (*Result, error) {
			return p.Query("gf(sam,G)", BestFirst, Learn(), InSession(sess))
		}},
		{"parallel", func() (*Result, error) {
			return p.Query("gf(sam,G)", Parallel, Workers(4), Learn())
		}},
		{"andpar", func() (*Result, error) {
			return p.Query("gf(sam,G), color(C)", BestFirst, AndParallel(), Learn(), InSession(sess))
		}},
		{"maintenance", func() (*Result, error) {
			_ = p.LearnedArcs()
			_ = p.LinkedListText()
			return p.Query("gf(sam,G)", BFS)
		}},
	}

	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs)*8)
	for round := 0; round < 8; round++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				res, err := j.run()
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", j.name, err)
					return
				}
				if len(res.Solutions) == 0 {
					errCh <- fmt.Errorf("%s: no solutions", j.name)
				}
			}(j)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	sess.End()
}

// TestConcurrentQueriesWithWeightMaintenance interleaves queries with
// ResetWeights, the other writer of the Program's global table.
func TestConcurrentQueriesWithWeightMaintenance(t *testing.T) {
	p, err := LoadString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if _, err := p.Query("gf(sam,G)", BestFirst, Learn()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			p.ResetWeights()
		}
	}()
	wg.Wait()
}

// TestCancelledParallelQueryLeaksNoGoroutines cancels an unbounded
// Parallel query mid-flight and verifies (a) the prompt context.Canceled
// return and (b) that every worker and watcher goroutine has exited.
func TestCancelledParallelQueryLeaksNoGoroutines(t *testing.T) {
	p, err := LoadString("loop :- loop.")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := p.QueryContext(ctx, "loop", Parallel,
				Workers(8), MaxDepth(1<<20), MaxExpansions(1<<62))
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d: query did not return within 5s of cancellation", i)
		}
	}

	// Give exiting goroutines a moment to unwind, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledQueryEveryStrategy: prompt context.Canceled from each
// discipline on an unbounded search.
func TestCancelledQueryEveryStrategy(t *testing.T) {
	p, err := LoadString("loop :- loop.\nloop2 :- loop2.")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		query string
		strat Strategy
		opts  []Option
	}{
		{"dfs", "loop", DFS, nil},
		{"bfs", "loop", BFS, nil},
		{"best", "loop", BestFirst, nil},
		{"parallel", "loop", Parallel, []Option{Workers(4)}},
		{"andpar", "loop, loop2", DFS, []Option{AndParallel()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			opts := append([]Option{MaxDepth(1 << 20), MaxExpansions(1 << 62)}, c.opts...)
			done := make(chan error, 1)
			go func() {
				_, err := p.QueryContext(ctx, c.query, c.strat, opts...)
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no return within 5s of cancellation")
			}
		})
	}
}

// TestAndParallelReportsRealExhaustion locks in the fix for the old
// facade's guess (`Exhausted: maxSolutions == 0`): exhaustion now comes
// from the engine, and solutions carry bound and depth like every other
// strategy.
func TestAndParallelReportsRealExhaustion(t *testing.T) {
	p, err := LoadString("p(1). p(2). p(3).\nq(a). q(b).")
	if err != nil {
		t.Fatal(err)
	}

	full, err := p.Query("p(X), q(Y)", DFS, AndParallel())
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Solutions) != 6 {
		t.Fatalf("solutions = %d, want 6", len(full.Solutions))
	}
	if !full.Exhausted {
		t.Error("complete cross product must report Exhausted")
	}
	if full.Groups != 2 {
		t.Errorf("groups = %d, want 2", full.Groups)
	}
	for _, s := range full.Solutions {
		if s.Depth != 2 {
			t.Errorf("solution %v: depth = %d, want 2 (one arc per group)", s, s.Depth)
		}
		if s.Bound <= 0 {
			t.Errorf("solution %v: bound = %v, want > 0", s, s.Bound)
		}
	}

	capped, err := p.Query("p(X), q(Y)", DFS, AndParallel(), MaxSolutions(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Solutions) != 4 {
		t.Fatalf("capped solutions = %d, want 4", len(capped.Solutions))
	}
	if capped.Exhausted {
		t.Error("a MaxSolutions-truncated run must not claim exhaustion")
	}

	// A cap at (or above) the full product is not a truncation.
	exact, err := p.Query("p(X), q(Y)", DFS, AndParallel(), MaxSolutions(6))
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exhausted {
		t.Error("cap equal to the full product still exhausts the tree")
	}

	// A proven failure is complete too.
	fail, err := p.Query("p(X), missing(Y)", DFS, AndParallel())
	if err != nil {
		t.Fatal(err)
	}
	if len(fail.Solutions) != 0 || !fail.Exhausted {
		t.Errorf("failed conjunction: %d solutions exhausted=%v, want 0/true",
			len(fail.Solutions), fail.Exhausted)
	}
}

// sortedSolutionStrings renders a result's solutions as a sorted string
// set, the comparison form of the subsumption convergence test below.
func sortedSolutionStrings(res *Result) []string {
	out := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		out = append(out, s.String())
	}
	sort.Strings(out)
	return out
}

// TestConcurrentSubsumptionConverges races answer improvements on one
// shared table space (run with -race): many goroutines — OR-parallel
// workers among them — produce and consume the min(3) shortest-path
// fixpoint of a cyclic weighted graph concurrently, while another
// goroutine invalidates the space (ResetWeights) to force re-productions
// to race live consumptions. Every run, under every strategy, must
// converge to exactly the minimal-cost answer set of an isolated
// sequential run.
func TestConcurrentSubsumptionConverges(t *testing.T) {
	const nodes, chords, seed = 12, 6, 9
	p, err := LoadString(workload.WeightedCyclic(nodes, chords, seed))
	if err != nil {
		t.Fatal(err)
	}
	// The reference comes from a second, isolated Program so its table
	// space never races the concurrent runs.
	refProg, err := LoadString(workload.WeightedCyclic(nodes, chords, seed))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := refProg.Query("shortest(v0, Z, C)", DFS, Tabled())
	if err != nil {
		t.Fatal(err)
	}
	want := sortedSolutionStrings(refRes)
	if len(want) != nodes {
		t.Fatalf("reference run found %d minima, want one per node", len(want))
	}

	strategies := []Strategy{Parallel, Parallel, DFS, BFS, BestFirst}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 12; i++ {
		strat := strategies[i%len(strategies)]
		wg.Add(1)
		go func(strat Strategy) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				opts := []Option{Tabled()}
				if strat == Parallel {
					opts = append(opts, Workers(4))
				}
				res, err := p.Query("shortest(v0, Z, C)", strat, opts...)
				if err != nil {
					errCh <- fmt.Errorf("%v: %w", strat, err)
					return
				}
				if got := sortedSolutionStrings(res); fmt.Sprint(got) != fmt.Sprint(want) {
					errCh <- fmt.Errorf("%v: answers diverged\n got: %v\nwant: %v", strat, got, want)
					return
				}
			}
		}(strat)
	}
	// Invalidation racing production and consumption: dropped tables must
	// be rebuilt with identical minima, never observed half-built.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 6; k++ {
			p.ResetWeights()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentAssertDuringQueriesAndSnapshots is the assert-while-serving
// regression for the clause store (run with -race): Program.Assert mutates
// kb.DB's predicate and first-argument indexes while tabled queries resolve
// against them and snapshot writes fingerprint them, which used to be
// completely unsynchronized. Asserts grow a chain edge by edge while every
// strategy queries its transitive closure and a snapshot writer serializes
// the table space; afterwards each strategy must serve the full post-assert
// closure.
func TestConcurrentAssertDuringQueriesAndSnapshots(t *testing.T) {
	p, err := LoadString(`:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(n0, n1).
`)
	if err != nil {
		t.Fatal(err)
	}
	const lastNode = 16
	strategies := []Strategy{DFS, BFS, BestFirst, Parallel}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	done := make(chan struct{})
	wg.Add(1)
	go func() { // asserter: extends the chain one edge at a time
		defer wg.Done()
		defer close(done)
		for i := 1; i < lastNode; i++ {
			if err := p.Assert(fmt.Sprintf("edge(n%d, n%d).", i, i+1)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for _, strat := range strategies {
		wg.Add(1)
		go func(strat Strategy) { // queriers race the asserts and each other
			defer wg.Done()
			for {
				opts := []Option{Tabled()}
				if strat == Parallel {
					opts = append(opts, Workers(4))
				}
				if _, err := p.Query("path(n0, Z)", strat, opts...); err != nil {
					errCh <- fmt.Errorf("%v: %w", strat, err)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(strat)
	}
	wg.Add(1)
	go func() { // snapshotter: fingerprints predicates while clauses land
		defer wg.Done()
		for {
			if _, err := p.SaveTables(io.Discard); err != nil {
				errCh <- fmt.Errorf("snapshot: %w", err)
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	want := make([]string, 0, lastNode)
	for i := 1; i <= lastNode; i++ {
		want = append(want, fmt.Sprintf("Z = n%d", i))
	}
	sort.Strings(want)
	for _, strat := range strategies {
		res, err := p.Query("path(n0, Z)", strat, Tabled())
		if err != nil {
			t.Fatalf("settled %v: %v", strat, err)
		}
		if got := sortedSolutionStrings(res); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("settled %v closure diverged\n got: %v\nwant: %v", strat, got, want)
		}
	}
}
