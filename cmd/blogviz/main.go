// Command blogviz dumps the paper's structural figures for any loaded
// program: the database graph (figure 2), the OR search tree of a query
// (figures 1 and 3), and the weighted linked-list storage structure
// (figure 4).
//
// Usage:
//
//	blogviz -fig graph -f program.pl
//	blogviz -fig tree  -f program.pl -q 'gf(sam,G)'
//	blogviz -fig list  -f program.pl
//
// Without -f it uses the paper's own figure-1 example program.
package main

import (
	"flag"
	"fmt"
	"os"

	"blog"
	"blog/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "tree", "what to draw: graph | dot | tree | list | trace")
		file  = flag.String("f", "", "program file (default: the paper's figure-1 example)")
		query = flag.String("q", "", "query for -fig tree/trace (default: the file's first ?- directive)")
	)
	flag.Parse()

	src := experiments.Fig1Program
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	prog, err := blog.LoadString(src)
	if err != nil {
		fatal(err)
	}
	q := *query
	if q == "" {
		if dq := prog.DirectiveQueries(); len(dq) > 0 {
			q = dq[0]
		} else if *file == "" {
			q = "gf(sam,G)"
		}
	}

	switch *fig {
	case "graph":
		fmt.Print(prog.GraphText())
	case "dot":
		fmt.Print(prog.GraphDOT())
	case "list":
		fmt.Print(prog.LinkedListText())
	case "tree":
		requireQuery(q)
		res, err := prog.Query(q, blog.DFS, blog.RecordTree())
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Tree)
	case "trace":
		requireQuery(q)
		res, err := prog.Query(q, blog.DFS, blog.RecordTrace(), blog.MaxSolutions(1))
		if err != nil {
			fatal(err)
		}
		for _, line := range res.Trace {
			fmt.Println(line)
		}
		for _, s := range res.Solutions {
			fmt.Println("solution:", s)
		}
	default:
		fatal(fmt.Errorf("unknown figure %q (graph | tree | list | trace)", *fig))
	}
}

func requireQuery(q string) {
	if q == "" {
		fatal(fmt.Errorf("this figure needs -q or a ?- directive in the file"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blogviz:", err)
	os.Exit(1)
}
