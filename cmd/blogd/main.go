// Command blogd serves a loaded logic program as a concurrent query
// service over HTTP/JSON — the "shared logic database driven by many
// query sessions" deployment the paper assumes. One blog.Program is
// shared by every request; a bounded worker pool with admission control
// keeps overload flat (429s), and per-request deadlines cancel abandoned
// searches.
//
// Usage:
//
//	blogd -f program.pl [-addr :8331] [-pool 8] [-queue 64] [-timeout 10s]
//
// Endpoints:
//
//	POST   /query                one-shot query (JSON in, JSON out)
//	POST   /query/stream         streaming query (NDJSON solutions)
//	POST   /sessions             create a learning session
//	GET    /sessions             list live sessions
//	POST   /sessions/{id}/query  query with session-scoped learning
//	DELETE /sessions/{id}        end the session (conservative merge)
//	GET    /healthz              liveness + pool gauges
//	GET    /metrics              Prometheus-style counters and latency histogram
//	GET    /stats                loaded program shape
//	GET    /profile              process-wide per-predicate profile (hottest first)
//	GET    /debug/queries        in-flight queries (live inspector)
//	DELETE /debug/queries/{id}   cancel an in-flight query (victim gets 410)
//	GET    /tables               memoized tables ranked by retained bytes
//	GET    /events               engine event journal (drain, or ?follow=1 NDJSON)
//
// Logs are structured (log/slog text format) on stdout; -slow-query
// turns on the sampled slow-query log, which records each offender's
// span tree and hottest predicates under its request ID. -v drops the
// log level to debug and tails the engine event journal into the log,
// one line per table/session/VM lifecycle event.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"blog"
	"blog/internal/server"
)

func main() {
	var (
		file       = flag.String("f", "", "program file to load (required)")
		addr       = flag.String("addr", ":8331", "listen address (host:port; port 0 picks a free port)")
		pool       = flag.Int("pool", 0, "max concurrent queries (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "max queued queries before 429 (0 = reject when all workers busy)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "hard cap on client-requested deadlines")
		solCap     = flag.Int("solution-cap", 1024, "max solutions returned per query")
		maxWorkers = flag.Int("max-workers", 16, "cap on client-requested parallel workers per query")
		sessions   = flag.Int("sessions", 1024, "max live learning sessions")
		sessionTTL = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (merging their weights)")
		strategy   = flag.String("strategy", "best", "default strategy: dfs | bfs | best | parallel")
		usePrelude = flag.Bool("prelude", false, "prepend the list/pair standard library")
		weightsIn  = flag.String("weights", "", "load a saved global weight table at startup")
		weightsOut = flag.String("weights-out", "", "save the global weight table on shutdown")
		tableSnap  = flag.String("table-snapshot", "", "persistent table snapshot file: loaded and validated at boot, rewritten on graceful shutdown (and periodically; see -snapshot-interval)")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "rewrite -table-snapshot at this cadence while serving (0 = only on shutdown)")
		compiled   = flag.String("compiled", "on", "resolution engine: on = bytecode VM, off = tree-walking oracle")
		pprofOn    = flag.Bool("pprof", false, "expose /debug/pprof endpoints for profiling the hot path")
		slowQuery  = flag.Duration("slow-query", 0, "log queries slower than this with span tree and hot predicates (0 = off)")
		verbose    = flag.Bool("v", false, "debug logging; tails the engine event journal into the log")
	)
	flag.Parse()
	logLevel := slog.LevelInfo
	if *verbose {
		logLevel = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stdout, &slog.HandlerOptions{Level: logLevel}))
	slog.SetDefault(logger)
	if *compiled != "on" && *compiled != "off" {
		fmt.Fprintf(os.Stderr, "blogd: -compiled must be on or off, got %q\n", *compiled)
		os.Exit(2)
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "blogd: -f program file is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	prog, err := blog.LoadString(string(src), blog.Config{Prelude: *usePrelude})
	if err != nil {
		fatal(err)
	}
	if *weightsIn != "" {
		f, err := os.Open(*weightsIn)
		if err != nil {
			fatal(err)
		}
		err = prog.LoadWeights(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if _, err := blog.ParseStrategy(*strategy); err != nil {
		fatal(err)
	}
	clauses, facts, rules, preds, arcs := prog.Stats()
	logger.Info("loaded program", "file", *file, "clauses", clauses, "facts", facts,
		"rules", rules, "predicates", preds, "arcs", arcs)

	queueLen := *queue
	if queueLen == 0 {
		queueLen = -1 // the operator's 0 means "no waiting", not the default
	}
	srv := server.New(server.Config{
		Program:         prog,
		MaxConcurrent:   *pool,
		QueueLen:        queueLen,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		SolutionCap:     *solCap,
		MaxWorkers:      *maxWorkers,
		MaxSessions:     *sessions,
		SessionTTL:      *sessionTTL,
		DefaultStrategy: *strategy,
		NoVM:            *compiled == "off",
		Logger:          logger,
		SlowQuery:       *slowQuery,
	})
	workers, queueLen := srv.Pool().Capacity()

	// The snapshot loads after server.New so the journal (enabled there)
	// records the snapshot_loaded event for /events. A missing file is a
	// cold boot, not an error; a table that fails validation (changed
	// clauses, changed tabling mode) is skipped and re-derives on touch.
	// And because the snapshot is a cache, not state, an unreadable or torn
	// file must never keep the daemon down: log it and boot cold — tables
	// loaded before the error are individually validated and stay.
	if *tableSnap != "" {
		if f, err := os.Open(*tableSnap); err == nil {
			loaded, skipped, lerr := prog.LoadTables(f)
			f.Close()
			if lerr != nil {
				logger.Error("table snapshot unreadable; starting cold", "file", *tableSnap, "err", lerr, "loaded", loaded, "skipped", skipped)
			} else {
				logger.Info("loaded table snapshot", "file", *tableSnap, "tables", loaded, "skipped", skipped)
			}
		} else if !os.IsNotExist(err) {
			logger.Error("table snapshot unreadable; starting cold", "file", *tableSnap, "err", err)
		}
	}

	// The query service owns every route; profiling endpoints mount on an
	// outer mux only when asked for, so production surfaces nothing extra
	// by default.
	handler := http.Handler(srv)
	if *pprofOn {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", srv)
		handler = outer
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// A response (including a full NDJSON stream, which is bounded by
		// the query deadline) must finish within the query cap plus write
		// slack, so a client that never reads cannot pin a worker slot.
		WriteTimeout: *maxTimeout + time.Minute,
	}
	logger.Info("listening", "addr", ln.Addr().String(), "pool", workers, "queue", queueLen)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *verbose {
		go tailJournal(ctx, prog.Journal(), logger)
	}
	// snapDone joins the periodic-snapshot goroutine before the shutdown
	// snapshot write, so the two never run writeSnapshot concurrently (the
	// write mutex already prevents interleaved file writes; the join also
	// keeps the shutdown from renaming an older periodic write over the
	// final one).
	snapDone := make(chan struct{})
	if *tableSnap != "" && *snapEvery > 0 {
		go func() {
			defer close(snapDone)
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if n, err := writeSnapshot(prog, *tableSnap); err != nil {
						logger.Error("periodic table snapshot", "err", err)
					} else {
						logger.Debug("wrote table snapshot", "file", *tableSnap, "tables", n)
					}
				}
			}
		}()
	} else {
		close(snapDone)
	}
	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	stop() // release the periodic-snapshot goroutine even on the serve-error path
	<-snapDone

	// Merge every live session before persisting, so learning from
	// clients that never sent DELETE survives the restart.
	if n := srv.EndAllSessions(); n > 0 {
		logger.Info("merged live sessions", "n", n)
	}
	if *tableSnap != "" {
		n, err := writeSnapshot(prog, *tableSnap)
		if err != nil {
			fatal(err)
		}
		logger.Info("saved table snapshot", "file", *tableSnap, "tables", n)
	}
	if *weightsOut != "" {
		f, err := os.Create(*weightsOut)
		if err != nil {
			fatal(err)
		}
		err = prog.SaveWeights(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		logger.Info("saved weights", "file", *weightsOut, "learned_arcs", prog.LearnedArcs())
	}
}

// tailJournal follows the engine event journal into the debug log, one
// line per table/session/VM lifecycle event — the -v operator's running
// commentary. Zero-valued fields are elided so each line carries only the
// shape its kind was emitted with.
func tailJournal(ctx context.Context, j *blog.Journal, logger *slog.Logger) {
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	var cursor uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, ev := range j.Events(cursor) {
			cursor = ev.Seq
			attrs := []any{"seq", ev.Seq, "kind", ev.Kind}
			if ev.RequestID != "" {
				attrs = append(attrs, "request_id", ev.RequestID)
			}
			if ev.Pred != "" {
				attrs = append(attrs, "pred", ev.Pred)
			}
			if ev.Call != "" {
				attrs = append(attrs, "call", ev.Call)
			}
			if ev.Cause != "" {
				attrs = append(attrs, "cause", ev.Cause)
			}
			if ev.Count != 0 {
				attrs = append(attrs, "count", ev.Count)
			}
			if ev.Bytes != 0 {
				attrs = append(attrs, "bytes", ev.Bytes)
			}
			if ev.Rounds != 0 {
				attrs = append(attrs, "rounds", ev.Rounds)
			}
			if ev.Generation != 0 {
				attrs = append(attrs, "generation", ev.Generation)
			}
			if ev.Millis != 0 {
				attrs = append(attrs, "ms", ev.Millis)
			}
			if ev.Detail != "" {
				attrs = append(attrs, "detail", ev.Detail)
			}
			logger.Debug("engine event", attrs...)
		}
	}
}

// snapMu serializes snapshot writes. The periodic ticker and the shutdown
// path are already kept apart by the snapDone join, but the mutex makes
// writeSnapshot safe on its own terms: two concurrent calls would each
// write a distinct temp file (os.CreateTemp) and rename a complete one
// into place, never a torn interleave.
var snapMu sync.Mutex

// writeSnapshot serializes the table space to path via a uniquely named
// temp file in the same directory and an atomic rename, so a crash
// mid-write never truncates the previous snapshot.
func writeSnapshot(prog *blog.Program, path string) (int, error) {
	snapMu.Lock()
	defer snapMu.Unlock()
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := prog.SaveTables(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "blogd: %v\n", err)
	os.Exit(1)
}
