// Command blogbench regenerates every exhibit of the reproduction: the
// paper's six figures (F1-F6) and the eight quantitative experiments
// (E1-E8) indexed in DESIGN.md, printing the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	blogbench                    # run everything
//	blogbench -exp E1,E4         # run selected experiments
//	blogbench -list              # list experiment ids
//	blogbench -bench-json FILE   # run exhibit benchmarks, write FILE (e.g. BENCH.json)
//	blogbench -exp E1 -cpuprofile cpu.out   # profile a run (go tool pprof cpu.out)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"blog/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		benchJSON  = flag.String("bench-json", "", "run the exhibit benchmarks and write machine-readable results to this file")
		benchLabel = flag.String("bench-label", "working tree", "label recorded with -bench-json results")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	os.Exit(run(*exp, *list, *benchJSON, *benchLabel, *cpuProfile, *memProfile))
}

// run holds the whole tool body so the profile-flushing defers execute on
// every exit path (os.Exit in main would skip them).
func run(exp string, list bool, benchJSON, benchLabel, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blogbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "blogbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blogbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "blogbench: memprofile: %v\n", err)
			}
		}()
	}

	if benchJSON != "" {
		if err := runBenchJSON(benchJSON, benchLabel); err != nil {
			fmt.Fprintf(os.Stderr, "blogbench: bench-json failed: %v\n", err)
			return 1
		}
		return 0
	}

	if list {
		for _, r := range experiments.All() {
			fmt.Printf("%-3s %s\n", r.ID, r.Desc)
		}
		return 0
	}

	var runners []experiments.Runner
	if exp == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(exp, ",") {
			id = strings.TrimSpace(id)
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "blogbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	}

	// Ctrl-C stops the suite at the next experiment boundary. Once the
	// first interrupt lands, restore default signal handling so a second
	// Ctrl-C kills the process even mid-experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	for i, r := range runners {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "blogbench: interrupted")
			return 130
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Desc)
		if err := r.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "blogbench: %s failed: %v\n", r.ID, err)
			return 1
		}
	}
	return 0
}
