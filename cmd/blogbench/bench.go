package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"blog/internal/experiments"
)

// benchResult is one benchmark's machine-readable outcome. Extra carries
// custom b.ReportMetric values (e.g. the E11 subsumption cases record
// "answers", the memoized answer count, so BENCH.json shows the
// tabled-min vs plain-tabled table sizes next to the timings).
type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp int64              `json:"allocs_op"`
	BytesOp  int64              `json:"bytes_op"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// benchRun is one labelled set of results.
type benchRun struct {
	Label      string                 `json:"label"`
	Go         string                 `json:"go,omitempty"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchFile is the BENCH.json schema. The baseline section is written once
// (or curated by hand from a known commit) and preserved on later runs, so
// the current section can always be compared against the same reference.
type benchFile struct {
	Note     string    `json:"note"`
	Baseline *benchRun `json:"baseline,omitempty"`
	Current  *benchRun `json:"current"`
}

// runBenchJSON runs the shared exhibit benchmarks
// (experiments.BenchCases, the same list bench_test.go runs) and writes
// BENCH.json. An existing baseline section in the output file is
// preserved; on a first run the current results also become the baseline.
func runBenchJSON(path, label string) error {
	cur := &benchRun{
		Label:      label,
		Go:         runtime.Version(),
		Benchmarks: make(map[string]benchResult),
	}
	for _, c := range experiments.BenchCases() {
		fmt.Fprintf(os.Stderr, "bench %-26s ", c.Name)
		r := testing.Benchmark(c.Fn)
		res := benchResult{
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		cur.Benchmarks[c.Name] = res
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %10d B/op %8d allocs/op\n",
			res.NsOp, res.BytesOp, res.AllocsOp)
	}

	out := &benchFile{
		Note:    "Per-exhibit benchmark results written by `blogbench -bench-json`. The baseline section is preserved across runs; compare current against it.",
		Current: cur,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old benchFile
		// Refuse to overwrite a file we cannot parse: silently replacing
		// a curated baseline with post-change numbers would corrupt every
		// future comparison.
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not valid BENCH json (fix or remove it): %w", path, err)
		}
		if old.Baseline != nil {
			out.Baseline = old.Baseline
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if out.Baseline == nil {
		out.Baseline = cur
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
