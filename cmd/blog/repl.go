package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"blog"
)

// replState carries the interactive session's settings.
type replState struct {
	prog     *blog.Program
	strategy blog.Strategy
	learn    bool
	tabled   bool
	noVM     bool
	profile  bool
	maxSol   int
	maxDepth int
	workers  int
	session  *blog.Session
}

const replHelp = `commands:
  <goal>.                 run a query, e.g. gf(sam, G).
  :strategy dfs|bfs|best|parallel
  :learn on|off           apply section-5 weight updates
  :n <k>                  stop after k solutions (0 = all)
  :depth <k>              chain depth limit (0 = default)
  :workers <k>            parallel worker count
  :session begin [alpha]  start a learning session
  :session end            merge the session into the global table
  :save <file>            write learned weights
  :load <file>            read learned weights
  :stats                  database and weight-table statistics
  :tables                 tabled predicates and memoized answer tables
  :tabled on|off          honor :- table declarations (default on)
  :compiled on|off        bytecode VM vs tree-walking oracle (default on)
  :profile on|off         print span trace and hottest predicates per query
  :help                   this text
  :quit                   leave

predicates declared ':- table name/arity' in the loaded file resolve
through memoized answer tables (left recursion terminates complete);
':- table name/arity min(N)' adds answer subsumption: argument N is a
cost slot and each table keeps only the least-cost answer per binding
of the remaining arguments (weighted shortest-path workloads).`

// runREPL drives an interactive loop until :quit or EOF.
func runREPL(prog *blog.Program, in io.Reader, out io.Writer, noVM bool) {
	st := &replState{prog: prog, strategy: blog.BestFirst, workers: 4, tabled: true, noVM: noVM}
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "B-LOG interactive. :help for commands.")
	for {
		fmt.Fprint(out, "?- ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ":"):
			if quit := st.command(line, out); quit {
				return
			}
		default:
			st.query(line, out)
		}
	}
}

// command handles a colon directive; returns true to exit.
func (st *replState) command(line string, out io.Writer) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return true
	case ":help", ":h":
		fmt.Fprintln(out, replHelp)
	case ":strategy":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: :strategy dfs|bfs|best|parallel")
			break
		}
		strat, err := blog.ParseStrategy(fields[1])
		if err != nil {
			fmt.Fprintf(out, "unknown strategy %q\n", fields[1])
			break
		}
		st.strategy = strat
		fmt.Fprintf(out, "strategy: %v\n", st.strategy)
	case ":learn":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(out, "usage: :learn on|off")
			break
		}
		st.learn = fields[1] == "on"
		fmt.Fprintf(out, "learn: %v\n", st.learn)
	case ":tabled":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(out, "usage: :tabled on|off")
			break
		}
		st.tabled = fields[1] == "on"
		fmt.Fprintf(out, "tabled: %v\n", st.tabled)
	case ":compiled":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(out, "usage: :compiled on|off")
			break
		}
		st.noVM = fields[1] == "off"
		fmt.Fprintf(out, "compiled: %v\n", !st.noVM)
	case ":profile":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(out, "usage: :profile on|off")
			break
		}
		st.profile = fields[1] == "on"
		fmt.Fprintf(out, "profile: %v\n", st.profile)
	case ":n", ":depth", ":workers":
		if len(fields) != 2 {
			fmt.Fprintf(out, "usage: %s <int>\n", fields[0])
			break
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 0 {
			fmt.Fprintf(out, "bad count %q\n", fields[1])
			break
		}
		switch fields[0] {
		case ":n":
			st.maxSol = v
		case ":depth":
			st.maxDepth = v
		case ":workers":
			st.workers = v
		}
		fmt.Fprintf(out, "%s = %d\n", fields[0][1:], v)
	case ":session":
		st.sessionCmd(fields, out)
	case ":save", ":load":
		if len(fields) != 2 {
			fmt.Fprintf(out, "usage: %s <file>\n", fields[0])
			break
		}
		if err := st.persist(fields[0] == ":save", fields[1]); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintf(out, "%s %s: %d learned arcs\n", fields[0][1:], fields[1], st.prog.LearnedArcs())
		}
	case ":stats":
		clauses, facts, rules, preds, arcs := st.prog.Stats()
		fmt.Fprintf(out, "database: %d clauses (%d facts, %d rules), %d predicates, %d arcs\n",
			clauses, facts, rules, preds, arcs)
		fmt.Fprintf(out, "weights: %d learned arcs", st.prog.LearnedArcs())
		if st.session != nil {
			fmt.Fprintf(out, " (+%d session-local)", st.session.LocalLearned())
		}
		fmt.Fprintln(out)
	case ":tables":
		st.tablesCmd(out)
	default:
		fmt.Fprintf(out, "unknown command %s (:help)\n", fields[0])
	}
	return false
}

func (st *replState) sessionCmd(fields []string, out io.Writer) {
	if len(fields) < 2 {
		fmt.Fprintln(out, "usage: :session begin [alpha] | :session end")
		return
	}
	switch fields[1] {
	case "begin":
		if st.session != nil {
			fmt.Fprintln(out, "a session is already active; :session end first")
			return
		}
		alpha := 0.0
		if len(fields) == 3 {
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				fmt.Fprintf(out, "bad alpha %q\n", fields[2])
				return
			}
			alpha = v
		}
		st.session = st.prog.NewSession(alpha)
		fmt.Fprintln(out, "session begun; learning is now session-local")
	case "end":
		if st.session == nil {
			fmt.Fprintln(out, "no session active")
			return
		}
		adopted, averaged, kept, vetoed := st.session.End()
		st.session = nil
		fmt.Fprintf(out, "session merged: %d adopted, %d averaged, %d infinities kept, %d vetoed\n",
			adopted, averaged, kept, vetoed)
	default:
		fmt.Fprintln(out, "usage: :session begin [alpha] | :session end")
	}
}

// tablesCmd lists the tabled predicates and their live answer tables.
func (st *replState) tablesCmd(out io.Writer) {
	preds := st.prog.TabledPreds()
	if len(preds) == 0 {
		fmt.Fprintln(out, "no tabled predicates (declare with ':- table name/arity.' in the program)")
		return
	}
	fmt.Fprintf(out, "tabled predicates: %s\n", strings.Join(preds, ", "))
	infos := st.prog.Tables()
	if len(infos) == 0 {
		fmt.Fprintln(out, "no answer tables yet (tables materialize as tabled goals are queried)")
		return
	}
	now := time.Now()
	for _, ti := range infos {
		state := ti.State
		if ti.Min > 0 {
			state += fmt.Sprintf("  min(%d)", ti.Min)
		}
		fmt.Fprintf(out, "  %-24s %4d answers  %8s  %4d hits  age %-8s %s\n",
			ti.Call, ti.Answers, humanBytes(ti.Bytes), ti.Hits,
			now.Sub(ti.CreatedAt).Round(time.Second), state)
	}
	_, tot := st.prog.TableStats()
	acct := st.prog.TableAccounting()
	fmt.Fprintf(out, "%d tables retaining %s; %d hits, %d re-derivations avoided",
		len(infos), humanBytes(acct.RetainedBytes), tot.Hits, tot.RederivationsAvoided)
	if tot.Subsumed+tot.Improved > 0 {
		fmt.Fprintf(out, "; %d answers subsumed, %d improved", tot.Subsumed, tot.Improved)
	}
	fmt.Fprintln(out)
}

// humanBytes renders an approximate byte count for table listings.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func (st *replState) persist(save bool, path string) error {
	if save {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return st.prog.SaveWeights(f)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return st.prog.LoadWeights(f)
}

func (st *replState) query(line string, out io.Writer) {
	line = strings.TrimSuffix(line, ".")
	opts := []blog.Option{blog.MaxSolutions(st.maxSol), blog.MaxDepth(st.maxDepth)}
	if st.noVM {
		opts = append(opts, blog.Compiled(false))
	}
	if st.tabled {
		// A no-op for programs with no `:- table` declarations.
		opts = append(opts, blog.Tabled())
	}
	if st.learn {
		opts = append(opts, blog.Learn())
	}
	if st.session != nil {
		opts = append(opts, blog.InSession(st.session))
	}
	if st.strategy == blog.Parallel {
		opts = append(opts, blog.Workers(st.workers))
	}
	var prof *blog.Profiler
	if st.profile {
		prof = blog.NewProfiler()
		opts = append(opts, blog.Traced(), blog.Profiled(prof))
	}
	// Ctrl-C interrupts the running query (every strategy honors the
	// context) instead of killing the REPL.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	res, err := st.prog.QueryContext(ctx, line, st.strategy, opts...)
	stop()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(out, "interrupted.")
		return
	}
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if len(res.Solutions) == 0 {
		fmt.Fprintln(out, "no.")
		st.printProfile(res, prof, out)
		return
	}
	for _, s := range res.Solutions {
		fmt.Fprintf(out, "%s ;\n", s)
	}
	fmt.Fprintf(out, "%d solution(s), %d expansions\n", len(res.Solutions), res.Expanded)
	st.printProfile(res, prof, out)
}

// printProfile renders the span trace and hottest-predicate table after a
// query when :profile is on.
func (st *replState) printProfile(res *blog.Result, prof *blog.Profiler, out io.Writer) {
	if prof == nil {
		return
	}
	if res.Spans != nil {
		fmt.Fprint(out, res.Spans.Render())
	}
	top := prof.Top(8)
	if len(top) == 0 {
		return
	}
	fmt.Fprintf(out, "%-20s %10s %10s %10s %10s\n", "pred", "expansions", "vm", "binds", "µs")
	for _, p := range top {
		fmt.Fprintf(out, "%-20s %10d %10d %10d %10.1f\n",
			p.Pred, p.Expansions, p.VMDispatches, p.TrailBinds, float64(p.Nanos)/1e3)
	}
}
