// Command blog is the B-LOG interpreter: it loads a logic program and
// answers queries under a chosen search strategy (Prolog-style DFS, BFS,
// B-LOG best-first branch and bound, or the parallel OR-engine).
//
// Usage:
//
//	blog -f program.pl -q 'gf(sam, G)' [-strategy best] [-learn] [-n 0]
//	blog -f program.pl            # runs the ?- directives in the file
//
// With -learn, arc weights are updated per the paper's section-5 rules,
// so repeating a query shows the adaptive speedup; -stats prints search
// work counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"blog"
)

func main() {
	var (
		file        = flag.String("f", "", "program file to load (required)")
		query       = flag.String("q", "", "query to run (default: the file's ?- directives)")
		strategy    = flag.String("strategy", "best", "search strategy: dfs | bfs | best | parallel")
		workers     = flag.Int("workers", 4, "workers for -strategy parallel")
		dFlag       = flag.Float64("d", -1, "migration threshold D (enables two-level parallel scheduling)")
		learn       = flag.Bool("learn", false, "apply section-5 weight updates")
		n           = flag.Int("n", 0, "stop after n solutions (0 = all)")
		depth       = flag.Int("depth", 0, "maximum chain depth (0 = default A)")
		stats       = flag.Bool("stats", false, "print search statistics")
		tree        = flag.Bool("tree", false, "print the search tree (sequential strategies)")
		trace       = flag.Bool("trace", false, "print a figure-1 style resolution trace")
		repeat      = flag.Int("repeat", 1, "run the query this many times (shows learning)")
		interactive = flag.Bool("i", false, "interactive REPL after loading")
		usePrelude  = flag.Bool("prelude", false, "prepend the list/pair standard library")
		tabled      = flag.Bool("tabled", true, "honor :- table declarations (answer memoization)")
		compiled    = flag.String("compiled", "on", "resolution engine: on = bytecode VM, off = tree-walking oracle")
	)
	flag.Parse()
	if *compiled != "on" && *compiled != "off" {
		fmt.Fprintf(os.Stderr, "blog: -compiled must be on or off, got %q\n", *compiled)
		os.Exit(2)
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "blog: -f program file is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	prog, err := blog.LoadString(string(src), blog.Config{Prelude: *usePrelude})
	if err != nil {
		fatal(err)
	}
	clauses, facts, rules, preds, arcs := prog.Stats()
	fmt.Printf("loaded %s: %d clauses (%d facts, %d rules), %d predicates, %d arcs\n",
		*file, clauses, facts, rules, preds, arcs)
	if tabled := prog.TabledPreds(); len(tabled) > 0 {
		fmt.Printf("tabled: %s\n", strings.Join(tabled, ", "))
	}

	if *interactive {
		runREPL(prog, os.Stdin, os.Stdout, *compiled == "off")
		return
	}

	strat, err := blog.ParseStrategy(*strategy)
	if err != nil {
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	queries := prog.DirectiveQueries()
	if *query != "" {
		queries = []string{*query}
	}
	if len(queries) == 0 {
		fmt.Println("no query given and no ?- directives in the file")
		return
	}

	// Ctrl-C cancels the in-flight query cleanly instead of killing the
	// process mid-search.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	for _, q := range queries {
		for rep := 0; rep < *repeat; rep++ {
			if *repeat > 1 {
				fmt.Printf("--- run %d ---\n", rep+1)
			}
			opts := []blog.Option{blog.MaxSolutions(*n), blog.MaxDepth(*depth)}
			if *compiled == "off" {
				opts = append(opts, blog.Compiled(false))
			}
			if *tabled {
				// A no-op for programs with no `:- table` declarations.
				opts = append(opts, blog.Tabled())
			}
			if *learn {
				opts = append(opts, blog.Learn())
			}
			if strat == blog.Parallel {
				opts = append(opts, blog.Workers(*workers))
				if *dFlag >= 0 {
					opts = append(opts, blog.MigrationThreshold(*dFlag))
				}
			} else {
				if *tree {
					opts = append(opts, blog.RecordTree())
				}
				if *trace {
					opts = append(opts, blog.RecordTrace())
				}
			}
			res, err := prog.QueryContext(ctx, q, strat, opts...)
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "blog: interrupted")
				os.Exit(130)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("?- %s.\n", q)
			if len(res.Solutions) == 0 {
				fmt.Println("no.")
			}
			for _, s := range res.Solutions {
				fmt.Printf("  %s  (bound %.3g, depth %d)\n", s, s.Bound, s.Depth)
			}
			if *trace && len(res.Trace) > 0 {
				fmt.Println("trace:")
				for _, line := range res.Trace {
					fmt.Println("  " + line)
				}
			}
			if *tree && res.Tree != "" {
				fmt.Println("search tree:")
				fmt.Print(res.Tree)
			}
			if *stats {
				fmt.Printf("stats: expanded=%d generated=%d failures=%d exhausted=%v learned-arcs=%d\n",
					res.Expanded, res.Generated, res.Failures, res.Exhausted, prog.LearnedArcs())
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blog:", err)
	os.Exit(1)
}
