package main

import (
	"path/filepath"
	"strings"
	"testing"

	"blog"
)

const fig1 = `
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

func runScript(t *testing.T, script string) string {
	t.Helper()
	prog, err := blog.LoadString(fig1)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	runREPL(prog, strings.NewReader(script), &out, false)
	return out.String()
}

func TestREPLQuery(t *testing.T) {
	out := runScript(t, "gf(sam, G).\n:quit\n")
	if !strings.Contains(out, "G = den") || !strings.Contains(out, "G = doug") {
		t.Errorf("missing solutions:\n%s", out)
	}
	if !strings.Contains(out, "2 solution(s)") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestREPLFailingQuery(t *testing.T) {
	out := runScript(t, "gf(peg, G).\n:quit\n")
	if !strings.Contains(out, "no.") {
		t.Errorf("missing 'no.':\n%s", out)
	}
}

func TestREPLBadQuery(t *testing.T) {
	out := runScript(t, "gf(sam.\n:quit\n")
	if !strings.Contains(out, "error:") {
		t.Errorf("missing parse error:\n%s", out)
	}
}

func TestREPLStrategyAndSettings(t *testing.T) {
	out := runScript(t, ":strategy dfs\n:n 1\ngf(sam, G).\n:quit\n")
	if !strings.Contains(out, "strategy: dfs") {
		t.Errorf("strategy echo missing:\n%s", out)
	}
	if !strings.Contains(out, "1 solution(s)") {
		t.Errorf("max solutions not applied:\n%s", out)
	}
	if strings.Contains(out, "G = doug") {
		t.Errorf("DFS with n=1 must stop at den:\n%s", out)
	}
}

func TestREPLLearnAndStats(t *testing.T) {
	out := runScript(t, ":learn on\ngf(sam, G).\n:stats\n:quit\n")
	if !strings.Contains(out, "learn: true") {
		t.Errorf("learn echo missing:\n%s", out)
	}
	if !strings.Contains(out, "12 clauses") {
		t.Errorf("stats missing:\n%s", out)
	}
	if strings.Contains(out, "weights: 0 learned arcs") {
		t.Errorf("learning did not happen:\n%s", out)
	}
}

func TestREPLSessionLifecycle(t *testing.T) {
	script := ":session begin 0.5\n:learn on\ngf(sam, G).\n:session end\n:session end\n:quit\n"
	out := runScript(t, script)
	if !strings.Contains(out, "session begun") {
		t.Errorf("begin missing:\n%s", out)
	}
	if !strings.Contains(out, "session merged:") {
		t.Errorf("merge missing:\n%s", out)
	}
	if !strings.Contains(out, "no session active") {
		t.Errorf("double end not caught:\n%s", out)
	}
}

func TestREPLSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.txt")
	out := runScript(t, ":learn on\ngf(sam, G).\n:save "+path+"\n:quit\n")
	if !strings.Contains(out, "save "+path) {
		t.Errorf("save echo missing:\n%s", out)
	}
	out2 := runScript(t, ":load "+path+"\n:stats\n:quit\n")
	if strings.Contains(out2, "weights: 0 learned arcs") {
		t.Errorf("load restored nothing:\n%s", out2)
	}
	out3 := runScript(t, ":load /nonexistent/file\n:quit\n")
	if !strings.Contains(out3, "error:") {
		t.Errorf("bad load not reported:\n%s", out3)
	}
}

func TestREPLHelpAndUnknown(t *testing.T) {
	out := runScript(t, ":help\n:nonsense\n:quit\n")
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown not caught:\n%s", out)
	}
}

func TestREPLEOFExits(t *testing.T) {
	out := runScript(t, "gf(sam, G).\n") // no :quit; EOF ends
	if !strings.Contains(out, "G = den") {
		t.Errorf("query before EOF should run:\n%s", out)
	}
}

const leftRecScript = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c). edge(c, a). edge(c, d).
`

// TestREPLTabled loads a left-recursive tabled program: queries terminate
// with the complete answer set and :tables lists the memoized tables.
func TestREPLTabled(t *testing.T) {
	prog, err := blog.LoadString(leftRecScript)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	runREPL(prog, strings.NewReader(":tables\npath(a, R).\n:tables\n:quit\n"), &out, false)
	s := out.String()
	if !strings.Contains(s, "tabled predicates: path/2") {
		t.Errorf("missing tabled predicate listing:\n%s", s)
	}
	if !strings.Contains(s, "no answer tables yet") {
		t.Errorf("missing empty-table notice before first query:\n%s", s)
	}
	for _, want := range []string{"R = a", "R = b", "R = c", "R = d", "4 solution(s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in query output:\n%s", want, s)
		}
	}
	// The listing row carries answers, retained size, hits and age columns.
	for _, want := range []string{"4 answers", "complete", "hits", "age ", "retaining"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in table listing after query:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "B ") && !strings.Contains(s, "KiB") {
		t.Errorf("missing human-readable size in table listing:\n%s", s)
	}
}

func TestREPLTablesWithoutDeclarations(t *testing.T) {
	out := runScript(t, ":tables\n:quit\n")
	if !strings.Contains(out, "no tabled predicates") {
		t.Errorf("missing notice:\n%s", out)
	}
}
