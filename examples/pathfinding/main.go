// Pathfinding: route queries over a layered network, the kind of
// repeated, similar query stream the paper's session concept targets.
// A dispatcher asks for routes from nearby sources all day; within a
// session B-LOG's learned weights steer the search straight to the
// productive edges, and the end-of-session merge improves the next
// session's starting point.
package main

import (
	"fmt"
	"log"
	"strings"

	"blog"
	"blog/internal/workload"
)

func main() {
	// A layered DAG: 6 layers x 5 nodes, 3 outgoing edges each, plus
	// path/2 rules (edge composition).
	src := workload.DAG(6, 5, 3, 2026)
	prog, err := blog.LoadString(src)
	if err != nil {
		log.Fatal(err)
	}
	clauses, facts, rules, _, arcs := prog.Stats()
	fmt.Printf("road network: %d clauses (%d edges, %d rules), %d weighted pointers\n\n",
		clauses, facts, rules, arcs)

	// The dispatcher's queries: all from layer-0 sources to anywhere.
	queries := []string{
		"path(n0_0, Z)", "path(n0_1, Z)", "path(n0_0, Z)",
		"path(n0_2, Z)", "path(n0_1, Z)", "path(n0_0, Z)",
	}

	// The dispatcher needs *a* route quickly (first few solutions), which
	// is where best-first learning pays: once a query's productive edges
	// are learned, repeats go straight down the known-good chains.
	const routesWanted = 5
	fmt.Printf("session 1: best-first, first %d routes per query, in-session learning\n", routesWanted)
	sess := prog.NewSession(0.7)
	var firstCost uint64
	repeatCosts := map[string][]uint64{}
	for i, q := range queries {
		res, err := prog.Query(q, blog.BestFirst, blog.Learn(), blog.InSession(sess),
			blog.MaxSolutions(routesWanted), blog.MaxDepth(24))
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			firstCost = res.Expanded
		}
		repeatCosts[q] = append(repeatCosts[q], res.Expanded)
		fmt.Printf("  ?- %-15s %3d routes, %4d expansions\n", q+".", len(res.Solutions), res.Expanded)
	}
	adopted, averaged, kept, vetoed := sess.End()
	fmt.Printf("session end: %d weights adopted, %d averaged, %d infinities kept, %d vetoed\n",
		adopted, averaged, kept, vetoed)
	for q, costs := range repeatCosts {
		if len(costs) > 1 && costs[len(costs)-1] < costs[0] {
			fmt.Printf("repeats of %q got cheaper: %d -> %d expansions\n", q, costs[0], costs[len(costs)-1])
		}
	}

	fmt.Println("\nsession 2 starts from the merged global weights:")
	res, err := prog.Query(queries[0], blog.BestFirst,
		blog.MaxSolutions(routesWanted), blog.MaxDepth(24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ?- %s  %d routes, %d expansions (was %d cold)\n",
		queries[0]+".", len(res.Solutions), res.Expanded, firstCost)

	// Show a few concrete destinations.
	fmt.Println("\nsample destinations reached from n0_0:")
	shown := 0
	for _, s := range res.Solutions {
		if strings.HasPrefix(s.Bindings["Z"], "n") {
			fmt.Printf("  n0_0 ~> %s\n", s.Bindings["Z"])
			if shown++; shown == routesWanted {
				break
			}
		}
	}
}
