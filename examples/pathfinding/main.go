// Pathfinding: route queries over a layered network, the kind of
// repeated, similar query stream the paper's session concept targets.
// A dispatcher asks for routes from nearby sources all day; within a
// session B-LOG's learned weights steer the search straight to the
// productive edges, and the end-of-session merge improves the next
// session's starting point.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"blog"
	"blog/internal/workload"
)

func main() {
	// A layered DAG: 6 layers x 5 nodes, 3 outgoing edges each, plus
	// path/2 rules (edge composition).
	src := workload.DAG(6, 5, 3, 2026)
	prog, err := blog.LoadString(src)
	if err != nil {
		log.Fatal(err)
	}
	clauses, facts, rules, _, arcs := prog.Stats()
	fmt.Printf("road network: %d clauses (%d edges, %d rules), %d weighted pointers\n\n",
		clauses, facts, rules, arcs)

	// The dispatcher's queries: all from layer-0 sources to anywhere.
	queries := []string{
		"path(n0_0, Z)", "path(n0_1, Z)", "path(n0_0, Z)",
		"path(n0_2, Z)", "path(n0_1, Z)", "path(n0_0, Z)",
	}

	// The dispatcher needs *a* route quickly (first few solutions), which
	// is where best-first learning pays: once a query's productive edges
	// are learned, repeats go straight down the known-good chains.
	const routesWanted = 5
	fmt.Printf("session 1: best-first, first %d routes per query, in-session learning\n", routesWanted)
	sess := prog.NewSession(0.7)
	var firstCost uint64
	repeatCosts := map[string][]uint64{}
	for i, q := range queries {
		res, err := prog.Query(q, blog.BestFirst, blog.Learn(), blog.InSession(sess),
			blog.MaxSolutions(routesWanted), blog.MaxDepth(24))
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			firstCost = res.Expanded
		}
		repeatCosts[q] = append(repeatCosts[q], res.Expanded)
		fmt.Printf("  ?- %-15s %3d routes, %4d expansions\n", q+".", len(res.Solutions), res.Expanded)
	}
	adopted, averaged, kept, vetoed := sess.End()
	fmt.Printf("session end: %d weights adopted, %d averaged, %d infinities kept, %d vetoed\n",
		adopted, averaged, kept, vetoed)
	for q, costs := range repeatCosts {
		if len(costs) > 1 && costs[len(costs)-1] < costs[0] {
			fmt.Printf("repeats of %q got cheaper: %d -> %d expansions\n", q, costs[0], costs[len(costs)-1])
		}
	}

	fmt.Println("\nsession 2 starts from the merged global weights:")
	res, err := prog.Query(queries[0], blog.BestFirst,
		blog.MaxSolutions(routesWanted), blog.MaxDepth(24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ?- %s  %d routes, %d expansions (was %d cold)\n",
		queries[0]+".", len(res.Solutions), res.Expanded, firstCost)

	// Show a few concrete destinations.
	fmt.Println("\nsample destinations reached from n0_0:")
	shown := 0
	for _, s := range res.Solutions {
		if strings.HasPrefix(s.Bindings["Z"], "n") {
			fmt.Printf("  n0_0 ~> %s\n", s.Bindings["Z"])
			if shown++; shown == routesWanted {
				break
			}
		}
	}

	out, err := leftRecursiveDemo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

// leftRecursiveSrc is the road network rewritten the natural way: the
// transitive-closure rule is left-recursive and the map has cycles
// (two-way streets). The plain OR-tree search re-derives path/2 around
// the loop until the depth cutoff and never completes; declared tabled,
// the same program terminates with the exact reachable set.
const leftRecursiveSrc = `
:- table path/2.
path(X, Z) :- path(X, Y), edge(Y, Z).
path(X, Y) :- edge(X, Y).

% A small city block: a one-way loop plus a spur.
edge(depot, market).
edge(market, plaza).
edge(plaza, depot).
edge(plaza, harbor).
`

// leftRecursiveDemo runs the cyclic, left-recursive network under tabled
// resolution and reports the complete reachability set; it returns the
// printable report so tests can assert the output.
func leftRecursiveDemo() (string, error) {
	prog, err := blog.LoadString(leftRecursiveSrc)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nleft-recursive variant (cyclic map, tabled %s):\n", strings.Join(prog.TabledPreds(), ", "))

	// Untabled, the query only stops at the depth cutoff — and at depth 4
	// it has found just the 1- and 2-hop destinations.
	capped, err := prog.Query("path(depot, Z)", blog.DFS, blog.MaxDepth(4))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  untabled (depth capped at 4): %d destinations, incomplete\n", len(capped.Solutions))

	res, err := prog.Query("path(depot, Z)", blog.DFS, blog.Tabled())
	if err != nil {
		return "", err
	}
	dests := make([]string, 0, len(res.Solutions))
	for _, s := range res.Solutions {
		dests = append(dests, s.Bindings["Z"])
	}
	sort.Strings(dests)
	fmt.Fprintf(&b, "  tabled: %d destinations, complete: %s\n", len(dests), strings.Join(dests, ", "))
	fmt.Fprintf(&b, "  (%d expansions, %d answers memoized)\n", res.Expanded, res.TableAnswers)
	return b.String(), nil
}
