package main

import (
	"strings"
	"testing"
)

// TestLeftRecursiveDemo asserts the example's tabled output: the cyclic,
// left-recursive network terminates only under blog.Tabled(), with the
// complete reachable set from the depot.
func TestLeftRecursiveDemo(t *testing.T) {
	out, err := leftRecursiveDemo()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tabled path/2",
		"untabled (depth capped at 4): 2 destinations, incomplete",
		"tabled: 4 destinations, complete: depot, harbor, market, plaza",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
