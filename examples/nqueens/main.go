// N-queens: a non-deterministic generate-and-test program, the workload
// class the paper says OR-parallelism speeds up best ("specially when
// more than one solution is needed", section 7). The example compares
// sequential strategies against the parallel OR-engine and prints the
// boards.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"blog"
	"blog/internal/workload"
)

func main() {
	prog, err := blog.LoadString(workload.NQueens)
	if err != nil {
		log.Fatal(err)
	}

	const n = 6
	query := fmt.Sprintf("queens(%d, Qs)", n)
	fmt.Printf("?- %s.   %% all solutions\n\n", query)

	start := time.Now()
	seq, err := prog.Query(query, blog.DFS, blog.MaxDepth(512))
	if err != nil {
		log.Fatal(err)
	}
	seqTime := time.Since(start)

	start = time.Now()
	par, err := prog.Query(query, blog.Parallel, blog.Workers(8),
		blog.MigrationThreshold(4), blog.MaxDepth(512))
	if err != nil {
		log.Fatal(err)
	}
	parTime := time.Since(start)

	fmt.Printf("sequential DFS:      %2d solutions in %8v (%d expansions)\n",
		len(seq.Solutions), seqTime.Round(time.Microsecond), seq.Expanded)
	fmt.Printf("parallel (8 workers): %2d solutions in %8v (%d expansions)\n\n",
		len(par.Solutions), parTime.Round(time.Microsecond), par.Expanded)

	if len(seq.Solutions) != len(par.Solutions) {
		log.Fatalf("solution sets differ: %d vs %d", len(seq.Solutions), len(par.Solutions))
	}

	fmt.Printf("first board (%s):\n", seq.Solutions[0].Bindings["Qs"])
	printBoard(seq.Solutions[0].Bindings["Qs"], n)
}

// printBoard renders a queens list like [2,4,1,3] as an ASCII board.
func printBoard(qs string, n int) {
	cols := strings.Split(strings.Trim(qs, "[]"), ",")
	for _, c := range cols {
		col := 0
		fmt.Sscanf(strings.TrimSpace(c), "%d", &col)
		for i := 1; i <= n; i++ {
			if i == col {
				fmt.Print(" Q")
			} else {
				fmt.Print(" .")
			}
		}
		fmt.Println()
	}
}
