// Quickstart: load the paper's figure-1 family database, run the
// grandparent query under Prolog-style DFS and under B-LOG best-first
// search with learning, and show the adaptive speedup of a re-query.
package main

import (
	"fmt"
	"log"

	"blog"
)

const program = `
% Figure 1 of the B-LOG paper: rules...
gf(X,Z) :- f(X,Y), f(Y,Z).
gf(X,Z) :- f(X,Y), m(Y,Z).

% ...and facts (f = father of, m = mother of).
f(curt,elain).   f(sam,larry).
f(dan,pat).      f(larry,den).
f(pat,john).     f(larry,doug).
m(elain,john).
m(marian,elain).
m(peg,den).
m(peg,doug).
`

func main() {
	prog, err := blog.LoadString(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("?- gf(sam, G).   % who is a grandchild of sam?")
	res, err := prog.Query("gf(sam, G)", blog.DFS)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Solutions {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("Prolog-style DFS expanded %d nodes, hit %d dead end(s).\n\n",
		res.Expanded, res.Failures)

	// B-LOG: best-first search that learns arc weights (section 5).
	first, err := prog.Query("gf(sam, G)", blog.BestFirst, blog.Learn())
	if err != nil {
		log.Fatal(err)
	}
	again, err := prog.Query("gf(sam, G)", blog.BestFirst, blog.Learn(), blog.MaxSolutions(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B-LOG best-first: first run expanded %d nodes;\n", first.Expanded)
	fmt.Printf("after learning, the re-query reached a solution in %d expansions\n", again.Expanded)
	fmt.Printf("and avoided the failing mother-branch entirely (failures: %d).\n", again.Failures)

	// The same query on the parallel OR-engine.
	par, err := prog.Query("gf(sam, G)", blog.Parallel, blog.Workers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel OR-search (4 workers) found %d solutions: ", len(par.Solutions))
	for i, s := range par.Solutions {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(s)
	}
	fmt.Println()
}
