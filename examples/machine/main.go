// Machine: run a query on the cycle-level simulation of the full figure-5
// B-LOG machine — scoreboard processors with multitasked chains, semantic
// paging disks, and the minimum-seeking network — and sweep the processor
// count to see simulated speedup.
package main

import (
	"fmt"
	"log"

	"blog"
	"blog/internal/workload"
)

func main() {
	prog, err := blog.LoadString(workload.FamilyTree(5, 3))
	if err != nil {
		log.Fatal(err)
	}
	query := "anc(p0, X)"
	fmt.Printf("simulating ?- %s. on the figure-5 machine\n\n", query)

	fmt.Println("procs  tasks  cycles     first-sol  page-ins  migrations  util(min..max)")
	var base int64
	for _, procs := range []int{1, 2, 4, 8} {
		cfg := blog.DefaultMachineConfig()
		cfg.Processors = procs
		cfg.MaxDepth = 32
		rep, err := prog.Simulate(query, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if procs == 1 {
			base = int64(rep.Cycles)
		}
		minU, maxU := 1.0, 0.0
		for _, u := range rep.ProcUtil {
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
		fmt.Printf("%5d  %5d  %-9d  %-9d  %-8d  %-10d  %.2f..%.2f   (speedup %.2fx)\n",
			procs, cfg.TasksPerProcessor, rep.Cycles, rep.FirstSolution,
			rep.PageIns, rep.Migrations, minU, maxU,
			float64(base)/float64(rep.Cycles))
	}

	fmt.Println("\nthe machine finds the same answers as the live engine:")
	cfg := blog.DefaultMachineConfig()
	cfg.MaxDepth = 32
	rep, err := prog.Simulate(query, cfg)
	if err != nil {
		log.Fatal(err)
	}
	live, err := prog.Query(query, blog.Parallel, blog.MaxDepth(32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: %d solutions   live goroutines: %d solutions\n",
		len(rep.Solutions), len(live.Solutions))
}
